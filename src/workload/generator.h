#ifndef LAKEKIT_WORKLOAD_GENERATOR_H_
#define LAKEKIT_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "json/value.h"
#include "table/table.h"

namespace lakekit::workload {

/// A planted ground-truth joinable pair.
struct PlantedPair {
  std::string table_a;
  std::string column_a;
  std::string table_b;
  std::string column_b;
  double target_jaccard = 0;
};

/// A synthetic lake with known joinability ground truth: the planted pairs
/// share values at a controlled Jaccard similarity while background columns
/// are pairwise disjoint, so discovery precision/recall is measurable —
/// which real web-table crawls (what JOSIE/D3L evaluated on) cannot give.
struct JoinableLake {
  std::vector<table::Table> tables;
  std::vector<PlantedPair> planted;
};

struct JoinableLakeOptions {
  size_t num_tables = 50;
  size_t rows_per_table = 120;
  /// String columns per table beyond the id/measure columns.
  size_t text_cols_per_table = 3;
  size_t num_planted_pairs = 12;
  /// Jaccard similarity of each planted pair's value sets.
  double overlap_jaccard = 0.6;
  uint64_t seed = 42;
};

/// Tables are generated in parallel on `pool` (nullptr ->
/// ThreadPool::Default(); size-1 pool = serial opt-out). Each table draws
/// from its own Rng seeded deterministically from (options.seed, table
/// index), so the lake is identical for any thread count.
JoinableLake MakeJoinableLake(const JoinableLakeOptions& options,
                              ThreadPool* pool = nullptr);

/// A lake of table groups drawing attribute values from shared semantic
/// domains: tables in the same group are unionable ground truth.
struct UnionableLake {
  std::vector<table::Table> tables;
  /// group id per table (parallel to `tables`).
  std::vector<size_t> group_of;
  /// domain name -> member terms (for Corpus::RegisterSemanticDomain).
  std::map<std::string, std::vector<std::string>> domains;
};

struct UnionableLakeOptions {
  size_t num_groups = 5;
  size_t tables_per_group = 4;
  size_t rows_per_table = 80;
  size_t cols_per_table = 3;
  size_t terms_per_domain = 40;
  uint64_t seed = 7;
};

UnionableLake MakeUnionableLake(const UnionableLakeOptions& options);

/// A synthetic log corpus with known record templates.
struct LogCorpus {
  std::string text;
  /// The planted template patterns (with <*> wildcards), by descending
  /// frequency.
  std::vector<std::string> planted_patterns;
  /// Lines emitted per planted template, parallel to planted_patterns.
  std::vector<size_t> lines_per_pattern;
};

struct LogCorpusOptions {
  size_t num_templates = 6;
  size_t total_lines = 2000;
  /// Zipf exponent of template popularity (0 = uniform).
  double popularity_skew = 0.8;
  uint64_t seed = 11;
};

LogCorpus MakeLogCorpus(const LogCorpusOptions& options);

/// Tables whose string columns draw terms from named semantic domains, with
/// ground truth term -> domain. D4/DomainNet benchmarks recover the domains.
struct DomainLake {
  std::vector<table::Table> tables;
  /// domain -> its terms.
  std::map<std::string, std::vector<std::string>> domains;
  /// Terms deliberately shared between two domains (planted homographs).
  std::vector<std::string> homographs;
};

struct DomainLakeOptions {
  size_t num_domains = 4;
  size_t terms_per_domain = 30;
  size_t num_tables = 12;
  size_t rows_per_table = 100;
  size_t num_homographs = 3;
  uint64_t seed = 19;
};

DomainLake MakeDomainLake(const DomainLakeOptions& options);

/// A table with planted quality problems for cleaning benchmarks: a
/// functional dependency city -> zip holds except in `violations` planted
/// rows (their row indexes are recorded).
struct DirtyTable {
  table::Table table;
  /// Row indexes whose zip contradicts the city->zip dependency.
  std::vector<size_t> violation_rows;
};

struct DirtyTableOptions {
  size_t num_rows = 500;
  size_t num_cities = 20;
  size_t num_violations = 15;
  uint64_t seed = 23;
};

DirtyTable MakeDirtyTable(const DirtyTableOptions& options);

/// JSON documents whose schema evolves over time: documents carry a
/// "_ts" field; the schema changes at known version boundaries (property
/// added, removed, renamed).
struct EvolvingCorpus {
  std::vector<json::Value> documents;
  /// Human-readable descriptions of the planted changes, in order.
  std::vector<std::string> planted_changes;
};

struct EvolvingCorpusOptions {
  size_t docs_per_version = 50;
  uint64_t seed = 29;
};

EvolvingCorpus MakeEvolvingCorpus(const EvolvingCorpusOptions& options);

}  // namespace lakekit::workload

#endif  // LAKEKIT_WORKLOAD_GENERATOR_H_
