// Tests for the engine front door's overload valve (query/admission.h):
// fast-path admission, FIFO queue-position fairness, the shed-vs-queue
// boundary at exactly max_queue_depth, deadline expiry and cancellation
// while queued, and the stats-balance invariants.

#include "query/admission.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/deadline.h"

namespace lakekit::query {
namespace {

using std::chrono::milliseconds;

/// Spins (with real sleeps) until `cond` holds; fails the test on timeout.
/// Queue-occupancy transitions are driven by real threads blocking in
/// Admit, so tests that need "thread X is now queued" poll for it.
void WaitUntil(const std::function<bool()>& cond) {
  for (int i = 0; i < 10000; ++i) {
    if (cond()) return;
    std::this_thread::sleep_for(milliseconds(1));
  }
  FAIL() << "condition not reached within timeout";
}

uint64_t HistTotal(const AdmissionStats& stats) {
  return std::accumulate(stats.queue_wait_ms_hist.begin(),
                         stats.queue_wait_ms_hist.end(), uint64_t{0});
}

void ExpectBalanced(const AdmissionStats& stats) {
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed +
                                 stats.expired_in_queue +
                                 stats.cancelled_in_queue);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed);
}

TEST(AdmissionTest, FastPathAdmitsUpToMaxConcurrent) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/2,
                                           /*max_queue_depth=*/4});
  Result<AdmissionController::Ticket> a = ctl.Admit();
  Result<AdmissionController::Ticket> b = ctl.Admit();
  LAKEKIT_CHECK_OK(a.status());
  LAKEKIT_CHECK_OK(b.status());
  EXPECT_TRUE(a->valid());
  EXPECT_EQ(ctl.in_flight(), 2u);
  EXPECT_EQ(ctl.queue_depth(), 0u);
  a->Finish(true);
  b->Finish(false);
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(ctl.in_flight(), 0u);
  ExpectBalanced(stats);
}

TEST(AdmissionTest, UnfinishedTicketSettlesAsCompletedOnDestruction) {
  AdmissionController ctl;
  {
    Result<AdmissionController::Ticket> t = ctl.Admit();
    LAKEKIT_CHECK_OK(t.status());
  }
  EXPECT_EQ(ctl.stats().completed, 1u);
  // Finish after the fact is idempotent with the destructor's settlement.
  AdmissionController::Ticket moved;
  {
    Result<AdmissionController::Ticket> t = ctl.Admit();
    LAKEKIT_CHECK_OK(t.status());
    moved = std::move(*t);
    EXPECT_FALSE(t->valid());  // NOLINT(bugprone-use-after-move): spec'd
  }
  moved.Finish(false);
  moved.Finish(true);  // already settled: ignored
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  ExpectBalanced(stats);
}

TEST(AdmissionTest, ZeroMaxConcurrentIsClampedToOne) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/0,
                                           /*max_queue_depth=*/1});
  Result<AdmissionController::Ticket> t = ctl.Admit();
  LAKEKIT_CHECK_OK(t.status());
  EXPECT_EQ(ctl.in_flight(), 1u);
}

TEST(AdmissionTest, ShedVsQueueBoundaryAtExactlyMaxQueueDepth) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/1,
                                           /*max_queue_depth=*/2});
  Result<AdmissionController::Ticket> running = ctl.Admit();
  LAKEKIT_CHECK_OK(running.status());

  // Two waiters fit the queue exactly.
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&ctl] {
      Result<AdmissionController::Ticket> t = ctl.Admit();
      LAKEKIT_CHECK_OK(t.status());
    });
  }
  WaitUntil([&] { return ctl.queue_depth() == 2; });

  // The queue is full: arrival #4 is shed immediately (no blocking) with
  // retriable kUnavailable.
  Result<AdmissionController::Ticket> shed = ctl.Admit();
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_TRUE(IsTransientError(shed.status()));
  EXPECT_EQ(ctl.queue_depth(), 2u);

  running->Finish(true);
  for (std::thread& t : waiters) t.join();
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(ctl.in_flight(), 0u);
  EXPECT_EQ(ctl.queue_depth(), 0u);
  ExpectBalanced(stats);
}

TEST(AdmissionTest, QueuePositionFairnessIsFifo) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/1,
                                           /*max_queue_depth=*/8});
  Result<AdmissionController::Ticket> running = ctl.Admit();
  LAKEKIT_CHECK_OK(running.status());

  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    // Sequential starts: waiter i is verifiably queued before waiter i+1
    // arrives, so queue position equals arrival order.
    waiters.emplace_back([&, i] {
      Result<AdmissionController::Ticket> t = ctl.Admit();
      LAKEKIT_CHECK_OK(t.status());
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
      // The ticket returns here, promoting the next waiter only after this
      // one recorded its slot — so the recorded order is the grant order.
    });
    WaitUntil([&] { return ctl.queue_depth() == static_cast<size_t>(i + 1); });
  }

  running->Finish(true);
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.queued, 4u);
  EXPECT_EQ(stats.shed, 0u);
  ExpectBalanced(stats);
}

TEST(AdmissionTest, DeadlineExpiryWhileQueuedLeavesWithoutRunning) {
  ManualClock clock;
  AdmissionOptions options{/*max_concurrent=*/1, /*max_queue_depth=*/4};
  options.clock = &clock;
  AdmissionController ctl(options);
  Result<AdmissionController::Ticket> running = ctl.Admit();
  LAKEKIT_CHECK_OK(running.status());

  Status queued_status;
  std::thread waiter([&] {
    Result<AdmissionController::Ticket> t =
        ctl.Admit(Deadline::After(milliseconds(50), &clock));
    queued_status = t.status();
  });
  WaitUntil([&] { return ctl.queue_depth() == 1; });
  clock.Advance(milliseconds(100));
  waiter.join();
  EXPECT_TRUE(queued_status.IsDeadlineExceeded()) << queued_status.ToString();
  // The expired entry left the queue without consuming the slot.
  EXPECT_EQ(ctl.queue_depth(), 0u);
  EXPECT_EQ(ctl.in_flight(), 1u);
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  // Its wait (measured on the manual clock) landed in the [64,inf) bucket.
  EXPECT_EQ(stats.queue_wait_ms_hist.back(), 1u);
  running->Finish(true);
  ExpectBalanced(ctl.stats());
}

TEST(AdmissionTest, CancellationWhileQueuedReturnsTheCause) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/1,
                                           /*max_queue_depth=*/4});
  Result<AdmissionController::Ticket> running = ctl.Admit();
  LAKEKIT_CHECK_OK(running.status());

  CancelSource source;
  Status queued_status;
  std::thread waiter([&] {
    Result<AdmissionController::Ticket> t =
        ctl.Admit(Deadline::Infinite(), source.token());
    queued_status = t.status();
  });
  WaitUntil([&] { return ctl.queue_depth() == 1; });
  source.Cancel(Status::Aborted("caller lost interest"));
  waiter.join();
  EXPECT_TRUE(queued_status.IsAborted()) << queued_status.ToString();
  EXPECT_EQ(queued_status.message(), "caller lost interest");
  EXPECT_EQ(ctl.queue_depth(), 0u);
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.cancelled_in_queue, 1u);
  EXPECT_EQ(stats.queued, 1u);
  running->Finish(true);
  ExpectBalanced(ctl.stats());
}

TEST(AdmissionTest, SpentBudgetOnArrivalNeverOccupiesAQueueSlot) {
  ManualClock clock;
  AdmissionController ctl;
  Deadline expired = Deadline::After(milliseconds(1), &clock);
  clock.Advance(milliseconds(5));
  Result<AdmissionController::Ticket> late = ctl.Admit(expired);
  EXPECT_TRUE(late.status().IsDeadlineExceeded());

  CancelSource source;
  source.Cancel();
  Result<AdmissionController::Ticket> cancelled =
      ctl.Admit(Deadline::Infinite(), source.token());
  EXPECT_TRUE(cancelled.status().IsAborted());

  EXPECT_EQ(ctl.in_flight(), 0u);
  EXPECT_EQ(ctl.queue_depth(), 0u);
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.cancelled_in_queue, 1u);
  EXPECT_EQ(stats.queued, 0u);
  ExpectBalanced(stats);
}

TEST(AdmissionTest, StatsBalanceAfterConcurrentChurn) {
  AdmissionController ctl(AdmissionOptions{/*max_concurrent=*/2,
                                           /*max_queue_depth=*/2});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&ctl, t] {
      for (int i = 0; i < 50; ++i) {
        Result<AdmissionController::Ticket> ticket = ctl.Admit();
        if (!ticket.ok()) {
          // Only sheds can fail an unarmed, undeadlined Admit.
          EXPECT_TRUE(ticket.status().IsUnavailable());
          continue;
        }
        std::this_thread::sleep_for(milliseconds((t + i) % 2));
        ticket->Finish(i % 3 != 0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ctl.in_flight(), 0u);
  EXPECT_EQ(ctl.queue_depth(), 0u);
  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.submitted, 400u);
  ExpectBalanced(stats);
  // Every admitted query recorded exactly one queue-wait sample.
  EXPECT_EQ(HistTotal(stats), stats.admitted + stats.expired_in_queue +
                                  stats.cancelled_in_queue);
}

}  // namespace
}  // namespace lakekit::query
