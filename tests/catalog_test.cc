#include <gtest/gtest.h>

#include <filesystem>

#include "catalog/catalog.h"
#include "json/parser.h"

namespace lakekit::catalog {
namespace {

namespace fs = std::filesystem;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("lakekit_catalog_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static DatasetEntry MakeEntry(const std::string& name) {
    DatasetEntry e;
    e.name = name;
    e.path = "lake/" + name + ".csv";
    e.format = "csv";
    e.size_bytes = 1024;
    e.num_records = 10;
    e.schema = "id:int64,name:string";
    e.description = "test dataset about " + name;
    e.tags = {"test", name};
    e.owner = "ada";
    e.project = "demo";
    return e;
  }

  std::string dir_;
};

TEST_F(CatalogTest, RegisterAndGet) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog->Register(MakeEntry("flights")).ok());
  auto e = catalog->Get("flights");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->name, "flights");
  EXPECT_EQ(e->version, 1u);
  EXPECT_GT(e->created_at, 0);
  EXPECT_EQ(e->created_at, e->updated_at);
}

TEST_F(CatalogTest, DuplicateRegisterFails) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog->Register(MakeEntry("x")).ok());
  EXPECT_TRUE(catalog->Register(MakeEntry("x")).IsAlreadyExists());
}

TEST_F(CatalogTest, EmptyNameRejected) {
  auto catalog = Catalog::Open(dir_);
  EXPECT_TRUE(catalog->Register(DatasetEntry{}).IsInvalidArgument());
}

TEST_F(CatalogTest, UpdateBumpsVersionKeepsCreation) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog->Register(MakeEntry("x")).ok());
  auto v1 = catalog->Get("x");
  DatasetEntry updated = MakeEntry("x");
  updated.description = "updated";
  ASSERT_TRUE(catalog->Update(updated).ok());
  auto v2 = catalog->Get("x");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->created_at, v1->created_at);
  EXPECT_GT(v2->updated_at, v1->updated_at);
  EXPECT_EQ(v2->description, "updated");
}

TEST_F(CatalogTest, UpdateMissingDatasetFails) {
  auto catalog = Catalog::Open(dir_);
  EXPECT_TRUE(catalog->Update(MakeEntry("ghost")).IsNotFound());
}

TEST_F(CatalogTest, VersionHistory) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog->Register(MakeEntry("x")).ok());
  for (int i = 0; i < 3; ++i) {
    DatasetEntry e = MakeEntry("x");
    e.description = "rev " + std::to_string(i);
    ASSERT_TRUE(catalog->Update(e).ok());
  }
  auto history = catalog->History("x");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 4u);
  EXPECT_EQ((*history)[0].version, 1u);
  EXPECT_EQ((*history)[3].version, 4u);
  auto v2 = catalog->GetVersion("x", 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->description, "rev 0");
}

TEST_F(CatalogTest, PersistsAcrossReopen) {
  {
    auto catalog = Catalog::Open(dir_);
    ASSERT_TRUE(catalog->Register(MakeEntry("persisted")).ok());
  }
  auto reopened = Catalog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto e = reopened->Get("persisted");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->owner, "ada");
  // Clock continues monotonically after reopen.
  ASSERT_TRUE(reopened->Register(MakeEntry("later")).ok());
  EXPECT_GT(reopened->Get("later")->created_at, e->created_at);
}

TEST_F(CatalogTest, RemoveErasesHistory) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog->Register(MakeEntry("x")).ok());
  ASSERT_TRUE(catalog->Update(MakeEntry("x")).ok());
  ASSERT_TRUE(catalog->Remove("x").ok());
  EXPECT_TRUE(catalog->Get("x").status().IsNotFound());
  EXPECT_TRUE(catalog->History("x").status().IsNotFound());
  EXPECT_TRUE(catalog->Remove("x").IsNotFound());
}

TEST_F(CatalogTest, ListDatasetsSorted) {
  auto catalog = Catalog::Open(dir_);
  ASSERT_TRUE(catalog->Register(MakeEntry("zebra")).ok());
  ASSERT_TRUE(catalog->Register(MakeEntry("alpha")).ok());
  EXPECT_EQ(catalog->ListDatasets(),
            (std::vector<std::string>{"alpha", "zebra"}));
  EXPECT_EQ(catalog->num_datasets(), 2u);
}

TEST_F(CatalogTest, SearchOverNameDescriptionTags) {
  auto catalog = Catalog::Open(dir_);
  DatasetEntry flights = MakeEntry("flights");
  flights.description = "airline departure delays";
  DatasetEntry med = MakeEntry("patients");
  med.tags = {"medical"};
  ASSERT_TRUE(catalog->Register(flights).ok());
  ASSERT_TRUE(catalog->Register(med).ok());
  EXPECT_EQ(catalog->Search("delays").size(), 1u);
  EXPECT_EQ(catalog->Search("DELAYS").size(), 1u);  // case-insensitive
  EXPECT_EQ(catalog->Search("medical").size(), 1u);
  EXPECT_EQ(catalog->Search("patients").size(), 1u);
  EXPECT_EQ(catalog->Search("nonexistent").size(), 0u);
}

TEST_F(CatalogTest, FindByTagAndOwner) {
  auto catalog = Catalog::Open(dir_);
  DatasetEntry a = MakeEntry("a");
  a.owner = "ada";
  DatasetEntry b = MakeEntry("b");
  b.owner = "bob";
  b.tags = {"test", "special"};
  ASSERT_TRUE(catalog->Register(a).ok());
  ASSERT_TRUE(catalog->Register(b).ok());
  EXPECT_EQ(catalog->FindByOwner("ada").size(), 1u);
  EXPECT_EQ(catalog->FindByOwner("bob").size(), 1u);
  EXPECT_EQ(catalog->FindByTag("special").size(), 1u);
  EXPECT_EQ(catalog->FindByTag("test").size(), 2u);
}

TEST_F(CatalogTest, JsonRoundTripPreservesAllCategories) {
  DatasetEntry e = MakeEntry("full");
  e.sources = {"upstream1", "upstream2"};
  e.producing_job = "etl_daily";
  e.content = *json::Parse(R"({"keywords":["flight","delay"]})");
  e.created_at = 5;
  e.updated_at = 9;
  e.version = 3;
  auto round = DatasetEntry::FromJson(e.ToJson());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->name, e.name);
  EXPECT_EQ(round->sources, e.sources);
  EXPECT_EQ(round->producing_job, e.producing_job);
  EXPECT_EQ(round->content, e.content);
  EXPECT_EQ(round->version, 3u);
  EXPECT_EQ(round->created_at, 5);
}

TEST_F(CatalogTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(DatasetEntry::FromJson(*json::Parse("[1,2]")).ok());
  EXPECT_FALSE(DatasetEntry::FromJson(*json::Parse("{}")).ok());
}

}  // namespace
}  // namespace lakekit::catalog
