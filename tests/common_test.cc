#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <shared_mutex>
#include <thread>

#include "common/bloom.h"
#include "common/crc32.h"
#include "common/rw_lock.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace lakekit {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("dataset 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "dataset 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: dataset 'x'");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailsThenPropagates() {
  LAKEKIT_RETURN_IF_ERROR(Status::Aborted("conflict"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_TRUE(s.IsAborted());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  LAKEKIT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello");
  EXPECT_EQ(*r, "hello");
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubledPositive(21).value(), 42);
  EXPECT_FALSE(DoubledPositive(0).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, CasingAndAffixes) {
  EXPECT_EQ(ToLower("HeLLo_123"), "hello_123");
  EXPECT_TRUE(StartsWith("dataset.csv", "dataset"));
  EXPECT_FALSE(StartsWith("x", "xx"));
  EXPECT_TRUE(EndsWith("dataset.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "dataset.csv"));
}

TEST(StringUtilTest, NumberDetection) {
  EXPECT_TRUE(LooksLikeInteger("42"));
  EXPECT_TRUE(LooksLikeInteger("-7"));
  EXPECT_FALSE(LooksLikeInteger("4.2"));
  EXPECT_FALSE(LooksLikeInteger(""));
  EXPECT_FALSE(LooksLikeInteger("-"));
  EXPECT_TRUE(LooksLikeNumber("3.14"));
  EXPECT_TRUE(LooksLikeNumber("-2.5e3"));
  EXPECT_FALSE(LooksLikeNumber("12abc"));
  EXPECT_FALSE(LooksLikeNumber("abc"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

// ---------------------------------------------------------------- hashing

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("lake"), Fnv1a64("lake"));
  EXPECT_NE(Fnv1a64("lake"), Fnv1a64("lakes"));
  EXPECT_NE(Fnv1a64(""), 0u);
}

TEST(HashTest, Mix64Bijective) {
  // Distinct inputs produce distinct outputs over a sample (it is bijective,
  // so no collision should ever occur).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second);
  }
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---------------------------------------------------------------- random

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  size_t low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 10) ++low;
  }
  // With s=1.2 the first 10 ranks take a large share of the mass.
  EXPECT_GT(low, static_cast<size_t>(n / 4));
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(17);
  size_t low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, NextWordHasRequestedLength) {
  Rng rng(23);
  std::string w = rng.NextWord(12);
  EXPECT_EQ(w.size(), 12u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPoolTest, SubmitRunsTasksAndDestructorDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { ++counter; });
    }
    // ~ThreadPool runs every queued task before joining the workers.
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelForTest, EmptyRangeIsOkAndRunsNothing) {
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  std::atomic<int> calls{0};
  Status s = ParallelFor(
      5, 5,
      [&](size_t) -> Status {
        ++calls;
        return Status::OK();
      },
      par);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ManyMoreTasksThanThreadsCoverEveryIndex) {
  ThreadPool pool(3);
  ParallelOptions par;
  par.pool = &pool;
  par.grain = 1;  // one task per index: 1000 tasks on 3 threads
  std::vector<std::atomic<int>> hits(1000);
  Status s = ParallelFor(
      0, hits.size(),
      [&](size_t i) -> Status {
        ++hits[i];
        return Status::OK();
      },
      par);
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SizeOnePoolIsTheSerialOptOut) {
  ThreadPool pool(1);
  ParallelOptions par;
  par.pool = &pool;
  std::atomic<size_t> sum{0};
  ASSERT_TRUE(ParallelFor(
                  0, 100,
                  [&](size_t i) -> Status {
                    sum += i;
                    return Status::OK();
                  },
                  par)
                  .ok());
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, ReturnsErrorFromLowestFailingChunk) {
  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  par.grain = 1;  // chunk == index, so "lowest chunk" is deterministic
  Status s = ParallelFor(
      0, 500,
      [&](size_t i) -> Status {
        if (i == 123 || i == 400) {
          return Status::InvalidArgument("bad index " + std::to_string(i));
        }
        return Status::OK();
      },
      par);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad index 123");
}

TEST(ParallelForTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  par.grain = 1;
  Status s = ParallelFor(
      0, 16,
      [&](size_t i) -> Status {
        if (i == 7) throw std::runtime_error("boom");
        return Status::OK();
      },
      par);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, NestedUseOnOnePoolDoesNotDeadlock) {
  // Outer iterations run on pool workers and each starts an inner
  // ParallelFor on the *same* pool; the helping waiters must drain the
  // nested tasks instead of sleeping, or this test hangs.
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  par.grain = 1;
  std::atomic<int> leaf{0};
  Status s = ParallelFor(
      0, 8,
      [&](size_t) -> Status {
        return ParallelFor(
            0, 8,
            [&](size_t) -> Status {
              ++leaf;
              return Status::OK();
            },
            par);
      },
      par);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(leaf.load(), 64);
}

TEST(ParallelMapTest, ResultsLandInInputOrder) {
  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  par.grain = 1;
  Result<std::vector<std::string>> r = ParallelMap<std::string>(
      50,
      [](size_t i) -> Result<std::string> {
        return "v" + std::to_string(i);
      },
      par);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 50u);
  for (size_t i = 0; i < r->size(); ++i) {
    EXPECT_EQ((*r)[i], "v" + std::to_string(i));
  }
}

TEST(ParallelMapTest, ErrorPropagates) {
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  Result<std::vector<int>> r = ParallelMap<int>(
      20,
      [](size_t i) -> Result<int> {
        if (i == 11) return Status::NotFound("11");
        return static_cast<int>(i);
      },
      par);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  EXPECT_GE(ThreadPool::Default().size(), 1u);
}

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32C check value and the empty-string identity.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // iSCSI test vector: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "hello, data lake";
  uint32_t whole = Crc32c(data);
  uint32_t chunked = Crc32c(data.substr(5), Crc32c(data.substr(0, 5)));
  EXPECT_EQ(whole, chunked);
}

TEST(Crc32Test, DetectsBitFlips) {
  std::string data = "record payload";
  uint32_t before = Crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32Test, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);
  }
}

TEST(RetryTest, TransientClassification) {
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::IoError("disk blip")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::NotFound("gone")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::AlreadyExists("lost race")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::Corruption("bad crc")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::OK()));
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  RetryOptions options;
  options.max_attempts = 5;
  RetryPolicy policy(options);
  int sleeps = 0;
  policy.set_sleep_fn([&](std::chrono::milliseconds) { ++sleeps; });
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return calls < 3 ? Status::IoError("blip") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps, 2);  // one backoff between each pair of attempts
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  policy.set_sleep_fn([](std::chrono::milliseconds) {});
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return Status::IoError("always down");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentErrorsReturnImmediately) {
  RetryPolicy policy;
  policy.set_sleep_fn([](std::chrono::milliseconds) {});
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return Status::NotFound("missing key");
  });
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffIsJitteredAndBounded) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff = std::chrono::milliseconds(4);
  options.max_backoff = std::chrono::milliseconds(20);
  RetryPolicy policy(options);
  std::vector<int64_t> sleeps;
  policy.set_sleep_fn(
      [&](std::chrono::milliseconds d) { sleeps.push_back(d.count()); });
  Status status =
      policy.Run([] { return Status::IoError("always down"); });
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(sleeps.size(), 7u);
  for (int64_t ms : sleeps) {
    EXPECT_GE(ms, 0);
    EXPECT_LE(ms, options.max_backoff.count());
  }
}

TEST(RetryTest, RunResultFlavor) {
  RetryPolicy policy;
  policy.set_sleep_fn([](std::chrono::milliseconds) {});
  int calls = 0;
  Result<int> result = policy.RunResult([&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IoError("blip");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------- RwLock

TEST(WriterPriorityRwLockTest, ExclusiveExcludesSharedAndVersaVice) {
  WriterPriorityRwLock lock;
  // Two values only ever updated together under the exclusive lock; any
  // reader seeing them out of sync caught a torn update.
  long a = 0;
  long b = 0;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        std::unique_lock guard(lock);
        ++a;
        ++b;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::shared_lock guard(lock);
        EXPECT_EQ(a, b);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  done.store(true, std::memory_order_release);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(a, 4000);
  EXPECT_EQ(b, 4000);
}

TEST(WriterPriorityRwLockTest, WritersAreNotStarvedByContinuousReaders) {
  // The regression that motivated the custom lock: glibc's shared_mutex
  // prefers readers, so overlapping reader loops can block a writer
  // forever. Here readers spin-taking the shared lock until the writer
  // gets through — with reader preference this test would hang.
  WriterPriorityRwLock lock;
  bool written = false;
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (;;) {
        std::shared_lock guard(lock);
        if (written) return;
      }
    });
  }
  std::thread writer([&] {
    std::unique_lock guard(lock);
    written = true;
  });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(written);
}

// ---------------------------------------------------------------- Bloom

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter empty;
  EXPECT_FALSE(empty.MayContain(""));
  EXPECT_FALSE(empty.MayContain("anything"));
}

TEST(BloomFilterTest, NoFalseNegatives) {
  constexpr int kKeys = 2000;
  BloomFilter filter(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    filter.Add("key" + std::to_string(i));
  }
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(filter.MayContain("key" + std::to_string(i)))
        << "false negative for key" << i;
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsBounded) {
  constexpr int kKeys = 2000;
  BloomFilter filter(kKeys, /*bits_per_key=*/10);
  for (int i = 0; i < kKeys; ++i) {
    filter.Add("present" + std::to_string(i));
  }
  int false_positives = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  // Theoretical FP rate at 10 bits/key is ~1%; allow generous slack so the
  // test pins "filters actually filter" without being hash-flaky.
  EXPECT_LT(false_positives, kProbes / 20)
      << "FP rate " << (100.0 * false_positives / kProbes) << "%";
}

TEST(BloomFilterTest, BinaryKeysAreExact) {
  BloomFilter filter(4);
  std::string nul("\x00\x01\xff", 3);
  filter.Add(nul);
  filter.Add("");
  EXPECT_TRUE(filter.MayContain(nul));
  EXPECT_TRUE(filter.MayContain(""));
}

}  // namespace
}  // namespace lakekit
