#include <gtest/gtest.h>

#include <filesystem>

#include "core/data_lake.h"
#include "workload/generator.h"

namespace lakekit::core {
namespace {

namespace fs = std::filesystem;

/// End-to-end integration tests over the DataLake facade: one ingest ->
/// maintain -> explore pass through all three tiers of the architecture.
class DataLakeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("lakekit_core_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name())))
               .string();
    fs::remove_all(dir_);
    auto lake = DataLake::Open(dir_);
    ASSERT_TRUE(lake.ok());
    lake_ = std::make_unique<DataLake>(std::move(*lake));
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<DataLake> lake_;
};

TEST_F(DataLakeTest, IngestCsvRoutesToRelationalStore) {
  IngestOptions options;
  options.owner = "ada";
  options.tags = {"demo"};
  auto entry = lake_->IngestFile("orders", "orders.csv",
                                 "id,total\n1,9.5\n2,3.25\n", options);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->format, "csv");
  EXPECT_EQ(entry->num_records, 2u);
  EXPECT_EQ(entry->owner, "ada");
  EXPECT_EQ(entry->schema, "id:int64,total:double");
  auto loc = lake_->polystore().Lookup("orders");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->store, storage::StoreKind::kRelational);
}

TEST_F(DataLakeTest, IngestJsonRoutesToDocumentStore) {
  auto entry = lake_->IngestFile(
      "events", "events.json",
      R"([{"kind":"click","n":1},{"kind":"view","n":2}])");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->format, "json");
  auto loc = lake_->polystore().Lookup("events");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->store, storage::StoreKind::kDocument);
  EXPECT_EQ(lake_->polystore().documents().Count("events"), 2u);
}

TEST_F(DataLakeTest, IngestLogRoutesToObjectStore) {
  auto entry = lake_->IngestFile(
      "serverlog", "server.log",
      "2024-01-01 INFO boot\n2024-01-01 WARN slow\n");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->format, "log");
  auto loc = lake_->polystore().Lookup("serverlog");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->store, storage::StoreKind::kObject);
}

TEST_F(DataLakeTest, DuplicateIngestFails) {
  ASSERT_TRUE(lake_->IngestFile("x", "x.csv", "a\n1\n").ok());
  EXPECT_FALSE(lake_->IngestFile("x", "x.csv", "a\n1\n").ok());
}

TEST_F(DataLakeTest, IngestRecordsProvenance) {
  IngestOptions options;
  options.owner = "ada";
  ASSERT_TRUE(lake_->IngestFile("d", "d.csv", "a\n1\n", options).ok());
  auto agents = lake_->provenance().AgentsOf("d");
  ASSERT_EQ(agents.size(), 1u);
  EXPECT_EQ(agents[0], "ada");
}

TEST_F(DataLakeTest, DiscoveryPipelineFindsPlantedJoins) {
  workload::JoinableLakeOptions options;
  options.num_tables = 12;
  options.rows_per_table = 80;
  options.num_planted_pairs = 4;
  auto lake_data = workload::MakeJoinableLake(options);
  for (auto& t : lake_data.tables) {
    ASSERT_TRUE(lake_->IngestTable(std::move(t)).ok());
  }
  // Discovery before indexing fails cleanly.
  EXPECT_FALSE(lake_->FindJoinableTables("table0", 3).ok());
  ASSERT_TRUE(lake_->BuildDiscoveryIndexes().ok());
  size_t found = 0;
  for (const auto& pair : lake_data.planted) {
    auto matches = lake_->FindJoinableTables(pair.table_a, 3);
    ASSERT_TRUE(matches.ok());
    for (const auto& m : *matches) {
      if (m.table_name == pair.table_b) ++found;
    }
  }
  EXPECT_GE(found, lake_data.planted.size() - 1);
  // JOSIE column-level path.
  const auto& pair = lake_data.planted[0];
  auto columns = lake_->FindJoinableColumns(pair.table_a, pair.column_a, 3);
  ASSERT_TRUE(columns.ok());
  ASSERT_FALSE(columns->empty());
  EXPECT_EQ(lake_->corpus()->sketch((*columns)[0].column).table_name,
            pair.table_b);
}

TEST_F(DataLakeTest, UnionableDiscoveryAcrossGroups) {
  workload::UnionableLakeOptions options;
  options.num_groups = 2;
  options.tables_per_group = 3;
  options.rows_per_table = 50;
  auto lake_data = workload::MakeUnionableLake(options);
  for (auto& t : lake_data.tables) {
    ASSERT_TRUE(lake_->IngestTable(std::move(t)).ok());
  }
  ASSERT_TRUE(lake_->BuildDiscoveryIndexes().ok());
  auto matches = lake_->FindUnionableTables("union_table0", 2);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);
  for (const auto& m : *matches) {
    EXPECT_EQ(lake_data.group_of[(*lake_->corpus()->TableIndex(m.table_name))],
              0u);
  }
}

TEST_F(DataLakeTest, IntegrationRecordsProvenance) {
  ASSERT_TRUE(lake_
                  ->IngestFile("towns_a", "a.csv",
                               "city,mayor\ndelft,ada\nleiden,bob\n")
                  .ok());
  ASSERT_TRUE(lake_
                  ->IngestFile("towns_b", "b.csv",
                               "city,population\ndelft,104000\nhague,552000\n")
                  .ok());
  auto merged = lake_->IntegrateDatasets({"towns_a", "towns_b"});
  ASSERT_TRUE(merged.ok());
  EXPECT_GE(merged->num_rows(), 2u);
  EXPECT_TRUE(merged->schema().HasField("city"));
  auto upstream = lake_->provenance().Upstream(merged->name());
  EXPECT_EQ(upstream.size(), 2u);
}

TEST_F(DataLakeTest, DependencyDiscoveryAndCleaning) {
  workload::DirtyTableOptions options;
  options.num_rows = 200;
  options.num_violations = 8;
  auto dirty = workload::MakeDirtyTable(options);
  ASSERT_TRUE(lake_->IngestTable(dirty.table).ok());
  auto fds = lake_->DiscoverDependencies("dirty");
  ASSERT_TRUE(fds.ok());
  bool city_zip = false;
  for (const auto& fd : *fds) {
    if (fd.lhs == std::vector<std::string>{"city"} && fd.rhs == "zip") {
      city_zip = true;
    }
  }
  EXPECT_TRUE(city_zip);
  auto dirty_tuples = lake_->FindDirtyTuples("dirty");
  ASSERT_TRUE(dirty_tuples.ok());
  EXPECT_FALSE(dirty_tuples->empty());
}

TEST_F(DataLakeTest, FederatedQueryAcrossIngestedSources) {
  ASSERT_TRUE(lake_
                  ->IngestFile("people", "people.csv",
                               "name,city\nada,delft\nbob,leiden\n")
                  .ok());
  ASSERT_TRUE(
      lake_
          ->IngestFile("cities", "cities.json",
                       R"([{"city":"delft","country":"NL"},)"
                       R"({"city":"leiden","country":"NL"}])")
          .ok());
  auto out = lake_->Query(
      "SELECT name, country FROM people JOIN cities ON people.city = "
      "cities.city ORDER BY name");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->at(0, 0).as_string(), "ada");
  EXPECT_EQ(out->at(0, 1).as_string(), "NL");
}

TEST_F(DataLakeTest, CatalogSearchFindsIngestedDatasets) {
  IngestOptions options;
  options.description = "airline departure delays 2024";
  ASSERT_TRUE(
      lake_->IngestFile("flights", "flights.csv", "f,d\nBA1,5\n", options)
          .ok());
  ASSERT_TRUE(lake_->IngestFile("other", "other.csv", "a\n1\n").ok());
  auto hits = lake_->Search("departure");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].name, "flights");
  EXPECT_EQ(lake_->num_datasets(), 2u);
}

TEST_F(DataLakeTest, ReopenSeesCatalog) {
  ASSERT_TRUE(lake_->IngestFile("persist", "p.csv", "a\n1\n").ok());
  lake_.reset();
  auto reopened = DataLake::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  // Catalog persists (KV-store backed); polystore relational content is
  // in-memory, so only metadata survives — the catalog still knows the
  // dataset.
  auto entry = reopened->catalog().Get("persist");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->schema, "a:int64");
}

}  // namespace
}  // namespace lakekit::core
