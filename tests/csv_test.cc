#include <gtest/gtest.h>

#include "csv/csv.h"

namespace lakekit::csv {
namespace {

TEST(CsvParseTest, SimpleWithHeader) {
  auto r = Parse("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(r->records[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, NoTrailingNewline) {
  auto r = Parse("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
}

TEST(CsvParseTest, CrLfTolerated) {
  auto r = Parse("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0][1], "2");
}

TEST(CsvParseTest, QuotedFieldWithDelimiter) {
  auto r = Parse("a,b\n\"x,y\",2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0][0], "x,y");
}

TEST(CsvParseTest, QuotedFieldWithNewline) {
  auto r = Parse("a,b\n\"line1\nline2\",2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0][0], "line1\nline2");
  ASSERT_EQ(r->records.size(), 1u);
}

TEST(CsvParseTest, DoubledQuotes) {
  auto r = Parse("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0][0], "she said \"hi\"");
}

TEST(CsvParseTest, EmptyFields) {
  auto r = Parse("a,b,c\n,,\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseTest, NoHeaderSynthesizesColumnNames) {
  ParseOptions opts;
  opts.has_header = false;
  auto r = Parse("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"col0", "col1"}));
  EXPECT_EQ(r->records.size(), 2u);
}

TEST(CsvParseTest, CustomDelimiter) {
  ParseOptions opts;
  opts.delimiter = '\t';
  auto r = Parse("a\tb\n1\t2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, RaggedRecordIsError) {
  EXPECT_FALSE(Parse("a,b\n1\n").ok());
  EXPECT_FALSE(Parse("a,b\n1,2,3\n").ok());
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(Parse("a\n\"open\n").ok());
}

TEST(CsvParseTest, EmptyInputWithHeaderExpectedIsError) {
  EXPECT_FALSE(Parse("").ok());
}

TEST(CsvParseTest, HeaderOnlyFileIsValid) {
  auto r = Parse("a,b,c\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
}

TEST(CsvWriteTest, RoundTrip) {
  CsvData data;
  data.header = {"name", "note"};
  data.records = {{"a,b", "say \"hi\""}, {"plain", "line\nbreak"}};
  std::string text = Write(data);
  auto r = Parse(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, data.header);
  EXPECT_EQ(r->records, data.records);
}

TEST(CsvWriteTest, QuoteFieldOnlyWhenNeeded) {
  EXPECT_EQ(QuoteField("plain"), "plain");
  EXPECT_EQ(QuoteField("a,b"), "\"a,b\"");
  EXPECT_EQ(QuoteField("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(QuoteField("nl\n"), "\"nl\n\"");
}

}  // namespace
}  // namespace lakekit::csv
