#include <gtest/gtest.h>

#include <set>
#include <string>

#include "discovery/aurum.h"
#include "discovery/brute_force.h"
#include "discovery/common.h"
#include "discovery/corpus.h"
#include "discovery/d3l.h"
#include "discovery/josie.h"
#include "discovery/pexeso.h"
#include "discovery/union_search.h"
#include "workload/generator.h"

namespace lakekit::discovery {
namespace {

// Shared fixture: a small lake with planted joinable pairs loaded into a
// corpus, reused across finder tests (building sketches is the slow part).
class DiscoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::JoinableLakeOptions options;
    options.num_tables = 24;
    options.rows_per_table = 100;
    options.num_planted_pairs = 8;
    options.overlap_jaccard = 0.6;
    lake_ = new workload::JoinableLake(workload::MakeJoinableLake(options));
    corpus_ = new Corpus();
    for (const auto& t : lake_->tables) {
      ASSERT_TRUE(corpus_->AddTable(t).ok());
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete lake_;
    corpus_ = nullptr;
    lake_ = nullptr;
  }

  static ColumnId Col(const std::string& table, const std::string& column) {
    return *corpus_->FindColumn(table, column);
  }

  /// True when `matches` contains `expected` among its top entries.
  static bool Contains(const std::vector<ColumnMatch>& matches,
                       ColumnId expected) {
    for (const ColumnMatch& m : matches) {
      if (m.column == expected) return true;
    }
    return false;
  }

  static workload::JoinableLake* lake_;
  static Corpus* corpus_;
};

workload::JoinableLake* DiscoveryTest::lake_ = nullptr;
Corpus* DiscoveryTest::corpus_ = nullptr;

// ---------------------------------------------------------------- corpus

TEST_F(DiscoveryTest, CorpusBasics) {
  EXPECT_EQ(corpus_->num_tables(), 24u);
  EXPECT_EQ(corpus_->num_columns(), 24u * 5u);  // id, measure, 3 attrs
  EXPECT_TRUE(corpus_->TableIndex("table0").ok());
  EXPECT_FALSE(corpus_->TableIndex("nope").ok());
  EXPECT_FALSE(corpus_->FindColumn("table0", "nope").ok());
}

TEST_F(DiscoveryTest, DuplicateTableRejected) {
  Corpus corpus;
  auto t = table::Table::FromCsv("x", "a\n1\n");
  ASSERT_TRUE(corpus.AddTable(*t).ok());
  EXPECT_TRUE(corpus.AddTable(*t).status().IsAlreadyExists());
}

TEST_F(DiscoveryTest, SketchContents) {
  const ColumnSketch& id_sketch = corpus_->sketch(Col("table0", "id"));
  EXPECT_EQ(id_sketch.type, table::DataType::kInt64);
  EXPECT_EQ(id_sketch.distinct_values.size(), 100u);
  EXPECT_TRUE(id_sketch.profile.is_candidate_key);
  EXPECT_FALSE(id_sketch.numeric_values.empty());

  const ColumnSketch& attr = corpus_->sketch(Col("table0", "attr0"));
  EXPECT_EQ(attr.type, table::DataType::kString);
  EXPECT_FALSE(attr.embedding.empty());
  EXPECT_FALSE(attr.format_histogram.empty());
}

TEST(ColumnIdTest, PackedRoundTrip) {
  ColumnId id{123456, 789};
  EXPECT_EQ(ColumnId::FromPacked(id.Packed()), id);
}

TEST(FormatPatternTest, CollapsesRuns) {
  EXPECT_EQ(FormatPattern("AB-12"), "a-d");
  EXPECT_EQ(FormatPattern("2024/01/02"), "d/d/d");
  EXPECT_EQ(FormatPattern("abc"), "a");
  EXPECT_EQ(FormatPattern(""), "");
  EXPECT_EQ(FormatPattern("a1b2"), "adad");
}

TEST(ExactMeasuresTest, OverlapJaccardContainment) {
  Corpus corpus;
  auto t1 = table::Table::FromCsv("t1", "x\na\nb\nc\nd\n");
  auto t2 = table::Table::FromCsv("t2", "y\nc\nd\ne\nf\n");
  ASSERT_TRUE(corpus.AddTable(*t1).ok());
  ASSERT_TRUE(corpus.AddTable(*t2).ok());
  const ColumnSketch& a = corpus.sketch(*corpus.FindColumn("t1", "x"));
  const ColumnSketch& b = corpus.sketch(*corpus.FindColumn("t2", "y"));
  EXPECT_EQ(ExactOverlap(a, b), 2u);
  EXPECT_DOUBLE_EQ(ExactJaccard(a, b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(ExactContainment(a, b), 0.5);
}

// ---------------------------------------------------------------- brute

TEST_F(DiscoveryTest, BruteForceFindsAllPlantedPairs) {
  BruteForceFinder finder(corpus_);
  for (const auto& pair : lake_->planted) {
    ColumnId qa = Col(pair.table_a, pair.column_a);
    ColumnId expected = Col(pair.table_b, pair.column_b);
    auto matches = finder.TopKJoinableColumns(qa, 3);
    EXPECT_TRUE(Contains(matches, expected))
        << pair.table_a << "." << pair.column_a << " -> " << pair.table_b;
    // Top match score approximates the planted Jaccard.
    ASSERT_FALSE(matches.empty());
    EXPECT_NEAR(matches[0].score, pair.target_jaccard, 0.05);
  }
}

TEST_F(DiscoveryTest, BruteForceGroundTruthPairCount) {
  BruteForceFinder finder(corpus_);
  auto pairs = finder.AllJoinablePairs(0.3);
  EXPECT_EQ(pairs.size(), lake_->planted.size());
}

TEST_F(DiscoveryTest, BruteForceBackgroundColumnHasNoMatches) {
  BruteForceFinder finder(corpus_);
  // Find a background (non-planted) attr column.
  std::set<std::string> planted_cols;
  for (const auto& p : lake_->planted) {
    planted_cols.insert(p.table_a + "." + p.column_a);
    planted_cols.insert(p.table_b + "." + p.column_b);
  }
  for (size_t t = 0; t < corpus_->num_tables(); ++t) {
    std::string name = corpus_->table(t).name();
    if (planted_cols.count(name + ".attr0") == 0) {
      auto matches = finder.TopKJoinableColumns(Col(name, "attr0"), 5);
      EXPECT_TRUE(matches.empty());
      return;
    }
  }
}

// ---------------------------------------------------------------- Aurum

class AurumTest : public DiscoveryTest {
 protected:
  static void SetUpTestSuite() {
    DiscoveryTest::SetUpTestSuite();
    finder_ = new AurumFinder(corpus_);
    ASSERT_TRUE(finder_->Build().ok());
  }
  static void TearDownTestSuite() {
    delete finder_;
    finder_ = nullptr;
    DiscoveryTest::TearDownTestSuite();
  }
  static AurumFinder* finder_;
};

AurumFinder* AurumTest::finder_ = nullptr;

TEST_F(AurumTest, LshConfigValidated) {
  AurumOptions bad;
  bad.lsh_bands = 3;
  bad.lsh_rows = 3;  // 9 != 128
  AurumFinder invalid(corpus_, bad);
  EXPECT_TRUE(invalid.Build().IsInvalidArgument());
}

TEST_F(AurumTest, FindsPlantedJoinablePairs) {
  size_t found = 0;
  for (const auto& pair : lake_->planted) {
    auto matches =
        finder_->TopKJoinableColumns(Col(pair.table_a, pair.column_a), 3);
    if (Contains(matches, Col(pair.table_b, pair.column_b))) ++found;
  }
  // LSH at J=0.6 with 32x4 banding collides with probability ~1.
  EXPECT_GE(found, lake_->planted.size() - 1);
}

TEST_F(AurumTest, JoinableTablesAggregation) {
  const auto& pair = lake_->planted[0];
  auto tables = finder_->TopKJoinableTables(*corpus_->TableIndex(pair.table_a), 5);
  ASSERT_FALSE(tables.empty());
  EXPECT_EQ(tables[0].table_name, pair.table_b);
}

TEST_F(AurumTest, SchemaSimilarColumnsShareName) {
  // Every table has an "id" column: all id columns are schema-similar.
  auto matches = finder_->SchemaSimilarColumns(Col("table0", "id"), 50);
  ASSERT_FALSE(matches.empty());
  for (const ColumnMatch& m : matches) {
    EXPECT_EQ(corpus_->sketch(m.column).column_name, "id");
  }
}

TEST_F(AurumTest, EkgHasTableHyperedges) {
  EXPECT_EQ(finder_->ekg().num_hyperedges(), corpus_->num_tables());
  EXPECT_EQ(finder_->ekg().HyperedgeNodes("table:table0").size(), 5u);
}

TEST_F(AurumTest, DiscoveryPathConnectsPlantedPair) {
  const auto& pair = lake_->planted[0];
  auto path = finder_->DiscoveryPath(Col(pair.table_a, pair.column_a),
                                     Col(pair.table_b, pair.column_b));
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), Col(pair.table_a, pair.column_a));
  EXPECT_EQ(path.back(), Col(pair.table_b, pair.column_b));
}

// ---------------------------------------------------------------- JOSIE

class JosieTest : public DiscoveryTest {
 protected:
  static void SetUpTestSuite() {
    DiscoveryTest::SetUpTestSuite();
    finder_ = new JosieFinder(corpus_);
    finder_->Build();
  }
  static void TearDownTestSuite() {
    delete finder_;
    finder_ = nullptr;
    DiscoveryTest::TearDownTestSuite();
  }
  static JosieFinder* finder_;
};

JosieFinder* JosieTest::finder_ = nullptr;

TEST_F(JosieTest, ExactTopKMatchesBruteForce) {
  BruteForceFinder brute(corpus_);
  for (const auto& pair : lake_->planted) {
    ColumnId q = Col(pair.table_a, pair.column_a);
    auto josie = finder_->TopKOverlapColumns(q, 5);
    auto exact = brute.TopKOverlapColumns(q, 5);
    ASSERT_EQ(josie.size(), exact.size());
    for (size_t i = 0; i < josie.size(); ++i) {
      EXPECT_EQ(josie[i].column, exact[i].column);
      EXPECT_DOUBLE_EQ(josie[i].score, exact[i].score);
    }
  }
}

TEST_F(JosieTest, OverlapCountIsExactIntersectionSize) {
  const auto& pair = lake_->planted[0];
  ColumnId qa = Col(pair.table_a, pair.column_a);
  ColumnId qb = Col(pair.table_b, pair.column_b);
  auto matches = finder_->TopKOverlapColumns(qa, 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].column, qb);
  EXPECT_DOUBLE_EQ(
      matches[0].score,
      static_cast<double>(ExactOverlap(corpus_->sketch(qa),
                                       corpus_->sketch(qb))));
}

TEST_F(JosieTest, AdHocValueQuery) {
  const auto& pair = lake_->planted[0];
  const ColumnSketch& target =
      corpus_->sketch(Col(pair.table_b, pair.column_b));
  // Query with a subset of the target's values.
  // The first distinct values are the pair's *shared* values, so both
  // planted columns legitimately contain all of them (a tie at 20).
  std::vector<std::string> values(target.distinct_values.begin(),
                                  target.distinct_values.begin() + 20);
  auto matches = finder_->TopKOverlapForValues(values, 2);
  ASSERT_EQ(matches.size(), 2u);
  bool target_found = false;
  for (const ColumnMatch& m : matches) {
    EXPECT_DOUBLE_EQ(m.score, 20.0);
    if (m.column == target.id) target_found = true;
  }
  EXPECT_TRUE(target_found);
}

TEST_F(JosieTest, JoinableTables) {
  const auto& pair = lake_->planted[0];
  auto tables =
      finder_->TopKJoinableTables(*corpus_->TableIndex(pair.table_a), 3);
  ASSERT_FALSE(tables.empty());
  EXPECT_EQ(tables[0].table_name, pair.table_b);
}

TEST_F(JosieTest, NoMatchesForUnseenValues) {
  auto matches =
      finder_->TopKOverlapForValues({"zzz_unseen_1", "zzz_unseen_2"}, 5);
  EXPECT_TRUE(matches.empty());
}

// ---------------------------------------------------------------- D3L

class D3lTest : public DiscoveryTest {
 protected:
  static void SetUpTestSuite() {
    DiscoveryTest::SetUpTestSuite();
    finder_ = new D3lFinder(corpus_);
    ASSERT_TRUE(finder_->Build().ok());
  }
  static void TearDownTestSuite() {
    delete finder_;
    finder_ = nullptr;
    DiscoveryTest::TearDownTestSuite();
  }
  static D3lFinder* finder_;
};

D3lFinder* D3lTest::finder_ = nullptr;

TEST_F(D3lTest, FeaturesOfPlantedPairAreStrong) {
  const auto& pair = lake_->planted[0];
  D3lFeatures f = finder_->ComputeFeatures(Col(pair.table_a, pair.column_a),
                                           Col(pair.table_b, pair.column_b));
  EXPECT_GT(f.values, 0.4);   // ~0.6 planted overlap
  EXPECT_GT(f.format, 0.5);   // same generator format
  // Unrelated background pair is weak on values.
  D3lFeatures g = finder_->ComputeFeatures(Col("table0", "id"),
                                           Col(pair.table_b, pair.column_b));
  EXPECT_LT(g.values, 0.1);
}

TEST_F(D3lTest, DistanceOrdersPlantedAboveBackground) {
  const auto& pair = lake_->planted[0];
  ColumnId qa = Col(pair.table_a, pair.column_a);
  ColumnId planted = Col(pair.table_b, pair.column_b);
  // Any background attr on another table.
  ColumnId background = Col(pair.table_b, "measure");
  EXPECT_LT(finder_->Distance(qa, planted), finder_->Distance(qa, background));
}

TEST_F(D3lTest, TopKFindsPlantedPairs) {
  size_t found = 0;
  for (const auto& pair : lake_->planted) {
    auto matches =
        finder_->TopKRelatedColumns(Col(pair.table_a, pair.column_a), 3);
    if (Contains(matches, Col(pair.table_b, pair.column_b))) ++found;
  }
  EXPECT_GE(found, lake_->planted.size() - 1);
}

TEST_F(D3lTest, TrainedWeightsFavorDiscriminativeFeatures) {
  std::vector<LabeledPair> pairs;
  for (const auto& p : lake_->planted) {
    pairs.push_back(LabeledPair{Col(p.table_a, p.column_a),
                                Col(p.table_b, p.column_b), true});
  }
  // Negatives: id vs attr columns across tables.
  for (size_t t = 0; t + 1 < corpus_->num_tables() && pairs.size() < 24;
       ++t) {
    pairs.push_back(LabeledPair{
        Col(corpus_->table(t).name(), "id"),
        Col(corpus_->table(t + 1).name(), "attr0"), false});
  }
  D3lFinder trained(corpus_);
  ASSERT_TRUE(trained.Build().ok());
  ASSERT_TRUE(trained.TrainWeights(pairs).ok());
  // Weights stay normalized (mean 1 across 5 dims).
  double total = 0;
  for (double w : trained.weights()) total += w;
  EXPECT_NEAR(total, 5.0, 1e-6);
  // Value overlap separates positives from negatives in this lake, so its
  // weight should be among the largest.
  double max_w = *std::max_element(trained.weights().begin(),
                                   trained.weights().end());
  EXPECT_GE(trained.weights()[1], max_w * 0.5);
  // Trained finder still retrieves planted pairs.
  const auto& pair = lake_->planted[0];
  auto matches =
      trained.TopKRelatedColumns(Col(pair.table_a, pair.column_a), 3);
  EXPECT_TRUE(Contains(matches, Col(pair.table_b, pair.column_b)));
}

TEST_F(D3lTest, TrainRequiresPairs) {
  D3lFinder f(corpus_);
  ASSERT_TRUE(f.Build().ok());
  EXPECT_TRUE(f.TrainWeights({}).IsInvalidArgument());
}

TEST_F(D3lTest, RelatedTables) {
  const auto& pair = lake_->planted[0];
  auto tables =
      finder_->TopKRelatedTables(*corpus_->TableIndex(pair.table_a), 3);
  ASSERT_FALSE(tables.empty());
  bool found = false;
  for (const auto& t : tables) {
    if (t.table_name == pair.table_b) found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- PEXESO

TEST(PexesoTest, FindsSemanticallyJoinableColumns) {
  // Two columns with *different* string values from the same semantic
  // domain: equality-based overlap is zero, but PEXESO links them.
  Corpus corpus;
  std::vector<std::string> colors_a{"red", "green", "blue", "cyan"};
  std::vector<std::string> colors_b{"crimson", "emerald", "navy", "teal"};
  std::vector<std::string> all;
  for (const auto& v : colors_a) all.push_back(v);
  for (const auto& v : colors_b) all.push_back(v);
  corpus.RegisterSemanticDomain("color", all);

  table::Table ta("paints", table::Schema({{"shade", table::DataType::kString, true}}));
  for (const auto& v : colors_a) ASSERT_TRUE(ta.AppendRow({table::Value(v)}).ok());
  table::Table tb("fabrics", table::Schema({{"tone", table::DataType::kString, true}}));
  for (const auto& v : colors_b) ASSERT_TRUE(tb.AppendRow({table::Value(v)}).ok());
  table::Table tc("misc", table::Schema({{"junk", table::DataType::kString, true}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tc.AppendRow({table::Value("junkvalue" + std::to_string(i))}).ok());
  }
  ASSERT_TRUE(corpus.AddTable(ta).ok());
  ASSERT_TRUE(corpus.AddTable(tb).ok());
  ASSERT_TRUE(corpus.AddTable(tc).ok());

  PexesoFinder finder(&corpus);
  finder.Build();
  EXPECT_GT(finder.num_indexed_values(), 0u);
  auto matches = finder.TopKSemanticJoinableColumns(
      *corpus.FindColumn("paints", "shade"), 5);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(corpus.sketch(matches[0].column).table_name, "fabrics");
  // Equality-based overlap is zero: exact methods cannot find this pair.
  EXPECT_EQ(ExactOverlap(corpus.sketch(*corpus.FindColumn("paints", "shade")),
                         corpus.sketch(*corpus.FindColumn("fabrics", "tone"))),
            0u);
  // The junk table does not appear.
  for (const auto& m : matches) {
    EXPECT_NE(corpus.sketch(m.column).table_name, "misc");
  }
}

TEST(PexesoTest, TableAggregation) {
  Corpus corpus;
  corpus.RegisterSemanticDomain("animal", {"cat", "dog", "wolf", "lynx"});
  table::Table ta("zoo", table::Schema({{"species", table::DataType::kString, true}}));
  ASSERT_TRUE(ta.AppendRow({table::Value("cat")}).ok());
  ASSERT_TRUE(ta.AppendRow({table::Value("dog")}).ok());
  table::Table tb("shelter", table::Schema({{"kind", table::DataType::kString, true}}));
  ASSERT_TRUE(tb.AppendRow({table::Value("wolf")}).ok());
  ASSERT_TRUE(tb.AppendRow({table::Value("lynx")}).ok());
  ASSERT_TRUE(corpus.AddTable(ta).ok());
  ASSERT_TRUE(corpus.AddTable(tb).ok());
  PexesoFinder finder(&corpus);
  finder.Build();
  auto tables = finder.TopKSemanticJoinableTables(0, 3);
  ASSERT_FALSE(tables.empty());
  EXPECT_EQ(tables[0].table_name, "shelter");
}

TEST(PexesoTest, NonTextualQueryYieldsNothing) {
  Corpus corpus;
  auto t = table::Table::FromCsv("nums", "x\n1\n2\n3\n");
  ASSERT_TRUE(corpus.AddTable(*t).ok());
  PexesoFinder finder(&corpus);
  finder.Build();
  EXPECT_TRUE(
      finder.TopKSemanticJoinableColumns(*corpus.FindColumn("nums", "x"), 5)
          .empty());
}

// ---------------------------------------------------------------- union

TEST(UnionSearchTest, GroupMembersAreTopUnionable) {
  workload::UnionableLakeOptions options;
  options.num_groups = 3;
  options.tables_per_group = 3;
  options.rows_per_table = 60;
  auto lake = workload::MakeUnionableLake(options);
  Corpus corpus;
  for (const auto& [domain, terms] : lake.domains) {
    corpus.RegisterSemanticDomain(domain, terms);
  }
  for (const auto& t : lake.tables) {
    ASSERT_TRUE(corpus.AddTable(t).ok());
  }
  UnionSearch search(&corpus);
  // For each table, its top-(group size - 1) unionable tables are exactly
  // its group members.
  for (size_t q = 0; q < lake.tables.size(); ++q) {
    auto matches = search.TopKUnionableTables(q, options.tables_per_group - 1);
    ASSERT_EQ(matches.size(), options.tables_per_group - 1);
    for (const auto& m : matches) {
      EXPECT_EQ(lake.group_of[m.table_idx], lake.group_of[q])
          << "table " << q << " matched out-of-group " << m.table_name;
      EXPECT_GT(m.score, 0.3);
      EXPECT_EQ(m.alignment.size(), options.cols_per_table);
    }
  }
}

TEST(UnionSearchTest, AttributeUnionabilityOrdering) {
  workload::UnionableLakeOptions options;
  options.num_groups = 2;
  options.tables_per_group = 2;
  auto lake = workload::MakeUnionableLake(options);
  Corpus corpus;
  for (const auto& t : lake.tables) ASSERT_TRUE(corpus.AddTable(t).ok());
  UnionSearch search(&corpus);
  // Same column position within a group >> across groups.
  ColumnId a = *corpus.FindColumn(lake.tables[0].name(), "g0_field0");
  ColumnId same_group = *corpus.FindColumn(lake.tables[1].name(), "g0_field0");
  ColumnId other_group =
      *corpus.FindColumn(lake.tables[2].name(), "g1_field0");
  EXPECT_GT(search.AttributeUnionability(a, same_group),
            search.AttributeUnionability(a, other_group));
}

TEST(UnionSearchTest, AlignmentIsOneToOne) {
  workload::UnionableLakeOptions options;
  options.num_groups = 1;
  options.tables_per_group = 2;
  auto lake = workload::MakeUnionableLake(options);
  Corpus corpus;
  for (const auto& t : lake.tables) ASSERT_TRUE(corpus.AddTable(t).ok());
  UnionSearch search(&corpus);
  auto alignment = search.AlignTables(0, 1);
  std::set<uint64_t> used_q;
  std::set<uint64_t> used_c;
  for (const auto& a : alignment) {
    EXPECT_TRUE(used_q.insert(a.query_column.Packed()).second);
    EXPECT_TRUE(used_c.insert(a.candidate_column.Packed()).second);
  }
}

// ------------------------------------------------- parallel determinism

// The execution-layer contract (DESIGN.md): a parallel-built corpus is
// bit-identical to a serial-built one over the same lake — sketch order,
// minhash values, embeddings, everything discovery reads.
TEST(CorpusParallelTest, ParallelBuildMatchesSerialBitForBit) {
  workload::JoinableLakeOptions options;
  options.num_tables = 16;
  options.rows_per_table = 80;
  options.num_planted_pairs = 5;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);

  Corpus serial;
  for (const auto& t : lake.tables) {
    ASSERT_TRUE(serial.AddTable(t).ok());
  }

  ThreadPool pool(4);
  Corpus parallel;
  Result<std::vector<size_t>> indexes =
      parallel.AddTables(lake.tables, &pool);
  ASSERT_TRUE(indexes.ok());
  ASSERT_EQ(indexes->size(), lake.tables.size());
  for (size_t i = 0; i < indexes->size(); ++i) {
    EXPECT_EQ((*indexes)[i], i);
  }

  ASSERT_EQ(parallel.num_tables(), serial.num_tables());
  ASSERT_EQ(parallel.num_columns(), serial.num_columns());
  for (size_t i = 0; i < serial.sketches().size(); ++i) {
    const ColumnSketch& s = serial.sketches()[i];
    const ColumnSketch& p = parallel.sketches()[i];
    SCOPED_TRACE(s.table_name + "." + s.column_name);
    EXPECT_EQ(p.id, s.id);
    EXPECT_EQ(p.table_name, s.table_name);
    EXPECT_EQ(p.column_name, s.column_name);
    EXPECT_EQ(p.type, s.type);
    EXPECT_EQ(p.distinct_values, s.distinct_values);
    EXPECT_EQ(p.value_set, s.value_set);
    EXPECT_EQ(p.minhash.values(), s.minhash.values());
    EXPECT_EQ(p.embedding, s.embedding);
    EXPECT_EQ(p.format_histogram, s.format_histogram);
    EXPECT_EQ(p.numeric_values, s.numeric_values);
    EXPECT_EQ(p.name_tokens, s.name_tokens);
    EXPECT_EQ(p.profile.distinct_count, s.profile.distinct_count);
    EXPECT_EQ(p.profile.null_count, s.profile.null_count);
    EXPECT_EQ(p.profile.is_candidate_key, s.profile.is_candidate_key);
  }
}

TEST(CorpusParallelTest, AddTablesRejectsDuplicatesWithoutSideEffects) {
  workload::JoinableLakeOptions options;
  options.num_tables = 4;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);

  Corpus corpus;
  ASSERT_TRUE(corpus.AddTable(lake.tables[1]).ok());
  // Batch contains a name already in the corpus: nothing may be ingested.
  Result<std::vector<size_t>> r = corpus.AddTables(lake.tables);
  EXPECT_TRUE(r.status().IsAlreadyExists());
  EXPECT_EQ(corpus.num_tables(), 1u);

  // Batch with an internal duplicate fails too.
  Corpus fresh;
  std::vector<table::Table> dup{lake.tables[0], lake.tables[0]};
  EXPECT_TRUE(fresh.AddTables(dup).status().IsAlreadyExists());
  EXPECT_EQ(fresh.num_tables(), 0u);
}

TEST(CorpusParallelTest, TableSketchesServesOwnColumnsInOrder) {
  workload::JoinableLakeOptions options;
  options.num_tables = 6;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);
  Corpus corpus;
  ASSERT_TRUE(corpus.AddTables(lake.tables).ok());
  for (size_t t = 0; t < corpus.num_tables(); ++t) {
    std::vector<const ColumnSketch*> sketches = corpus.TableSketches(t);
    ASSERT_EQ(sketches.size(), corpus.table(t).num_columns());
    for (size_t c = 0; c < sketches.size(); ++c) {
      EXPECT_EQ(sketches[c]->id.table_idx, t);
      EXPECT_EQ(sketches[c]->id.col_idx, c);
    }
  }
  EXPECT_TRUE(corpus.TableSketches(corpus.num_tables()).empty());
}

// Finder builds are deterministic across pool sizes: same EKG edges, same
// PK-FK pairs, same query answers.
TEST(CorpusParallelTest, AurumBuildIsDeterministicAcrossPoolSizes) {
  workload::JoinableLakeOptions options;
  options.num_tables = 16;
  options.num_planted_pairs = 5;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);
  Corpus corpus;
  ASSERT_TRUE(corpus.AddTables(lake.tables).ok());

  ThreadPool serial_pool(1);
  ThreadPool wide_pool(4);
  AurumFinder a(&corpus);
  AurumFinder b(&corpus);
  ASSERT_TRUE(a.Build(&serial_pool).ok());
  ASSERT_TRUE(b.Build(&wide_pool).ok());

  EXPECT_EQ(a.ekg().edges().size(), b.ekg().edges().size());
  EXPECT_EQ(a.PkFkPairs(), b.PkFkPairs());
  for (const auto& planted : lake.planted) {
    ColumnId q = *corpus.FindColumn(planted.table_a, planted.column_a);
    EXPECT_EQ(a.TopKJoinableColumns(q, 3), b.TopKJoinableColumns(q, 3));
  }
}

TEST(CorpusParallelTest, BruteForceAllPairsIsDeterministicAcrossPoolSizes) {
  workload::JoinableLakeOptions options;
  options.num_tables = 12;
  options.num_planted_pairs = 4;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);
  Corpus corpus;
  ASSERT_TRUE(corpus.AddTables(lake.tables).ok());
  BruteForceFinder brute(&corpus);
  ThreadPool serial_pool(1);
  ThreadPool wide_pool(4);
  EXPECT_EQ(brute.AllJoinablePairs(0.3, &serial_pool),
            brute.AllJoinablePairs(0.3, &wide_pool));
}

}  // namespace
}  // namespace lakekit::discovery
