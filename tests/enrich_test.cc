#include <gtest/gtest.h>

#include <set>

#include "discovery/corpus.h"
#include "enrich/d4.h"
#include "enrich/domain_net.h"
#include "enrich/rfd.h"
#include "workload/generator.h"

namespace lakekit::enrich {
namespace {

// ---------------------------------------------------------------- D4

class DomainLakeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::DomainLakeOptions options;
    options.num_domains = 4;
    options.num_tables = 16;
    options.rows_per_table = 120;
    options.num_homographs = 2;
    lake_ = new workload::DomainLake(workload::MakeDomainLake(options));
    corpus_ = new discovery::Corpus();
    for (const auto& t : lake_->tables) {
      ASSERT_TRUE(corpus_->AddTable(t).ok());
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete lake_;
  }
  static workload::DomainLake* lake_;
  static discovery::Corpus* corpus_;
};

workload::DomainLake* DomainLakeTest::lake_ = nullptr;
discovery::Corpus* DomainLakeTest::corpus_ = nullptr;

TEST_F(DomainLakeTest, D4RecoversPlantedDomains) {
  D4DomainDiscovery d4;
  auto domains = d4.Discover(*corpus_);
  // Expect one discovered domain per planted domain that actually appears
  // in a column (all 4 appear in a 16-table lake with high probability).
  ASSERT_GE(domains.size(), 3u);
  // Each discovered domain's terms should be overwhelmingly from one
  // planted domain.
  for (const Domain& d : domains) {
    std::map<std::string, size_t> votes;  // planted domain -> count
    for (const std::string& term : d.terms) {
      for (const auto& [planted, terms] : lake_->domains) {
        for (const std::string& pt : terms) {
          if (pt == term) ++votes[planted];
        }
      }
    }
    ASSERT_FALSE(votes.empty());
    size_t best = 0;
    size_t total = 0;
    for (const auto& [planted, count] : votes) {
      best = std::max(best, count);
      total += count;
    }
    EXPECT_GE(static_cast<double>(best) / static_cast<double>(total), 0.8);
  }
}

TEST_F(DomainLakeTest, D4AmbiguousTermJoinsMultipleDomains) {
  D4DomainDiscovery d4;
  auto domains = d4.Discover(*corpus_);
  // The planted homographs live in two domains; DomainsOfTerm should find
  // them in >= 1 discovered domain (2 when both domains surfaced).
  for (const std::string& h : lake_->homographs) {
    auto ids = D4DomainDiscovery::DomainsOfTerm(domains, h);
    EXPECT_GE(ids.size(), 1u) << h;
  }
  // A non-homograph term appears in at most one domain.
  auto ids = D4DomainDiscovery::DomainsOfTerm(domains, "dom0_term0");
  EXPECT_LE(ids.size(), 1u);
}

TEST(D4SmallTest, DisjointColumnsYieldSeparateDomains) {
  discovery::Corpus corpus;
  auto colors = table::Table::FromCsv(
      "cars", "vehicle_color\nred\ngreen\nblue\nwhite\n");
  auto colors2 = table::Table::FromCsv(
      "clothes", "cloth_color\nred\ngreen\nblue\nblack\n");
  auto cities = table::Table::FromCsv(
      "trips", "city\ndelft\nleiden\nhague\nrotterdam\n");
  ASSERT_TRUE(corpus.AddTable(*colors).ok());
  ASSERT_TRUE(corpus.AddTable(*colors2).ok());
  ASSERT_TRUE(corpus.AddTable(*cities).ok());
  D4DomainDiscovery d4;
  auto domains = d4.Discover(corpus);
  ASSERT_EQ(domains.size(), 2u);
  // The color domain merges the two color columns.
  EXPECT_EQ(domains[0].columns.size(), 2u);
  EXPECT_TRUE(std::find(domains[0].terms.begin(), domains[0].terms.end(),
                        "red") != domains[0].terms.end());
  EXPECT_EQ(domains[1].columns.size(), 1u);
}

// ---------------------------------------------------------------- DomainNet

TEST_F(DomainLakeTest, DomainNetFindsPlantedHomographs) {
  DomainNet net;
  net.Build(*corpus_);
  EXPECT_GE(net.num_communities(), 2u);
  auto homographs = net.FindHomographs();
  std::set<std::string> found;
  for (const Homograph& h : homographs) found.insert(h.value);
  size_t hits = 0;
  for (const std::string& planted : lake_->homographs) {
    if (found.count(planted) > 0) ++hits;
  }
  EXPECT_GE(hits, 1u);
  // Regular terms score 1 (single community).
  EXPECT_LE(net.HomographScore("dom0_term0"), 1.0);
  EXPECT_DOUBLE_EQ(net.HomographScore("never_seen"), 0.0);
}

TEST(DomainNetSmallTest, BridgingValueDetected) {
  discovery::Corpus corpus;
  // Community 1: fruit columns sharing many values; community 2: brands.
  auto fruit1 = table::Table::FromCsv(
      "f1", "fruit\napple\nbanana\npear\ncherry\n");
  auto fruit2 = table::Table::FromCsv(
      "f2", "fruit\napple\nbanana\npear\nplum\n");
  auto brand1 = table::Table::FromCsv(
      "b1", "brand\napple\nsamsung\nsony\nnokia\n");
  auto brand2 = table::Table::FromCsv(
      "b2", "brand\nsamsung\nsony\nnokia\nxiaomi\n");
  ASSERT_TRUE(corpus.AddTable(*fruit1).ok());
  ASSERT_TRUE(corpus.AddTable(*fruit2).ok());
  ASSERT_TRUE(corpus.AddTable(*brand1).ok());
  ASSERT_TRUE(corpus.AddTable(*brand2).ok());
  DomainNet net;
  net.Build(corpus);
  // "apple" appears in the fruit community and the brand community.
  EXPECT_GE(net.HomographScore("apple"), 2.0);
  EXPECT_LE(net.HomographScore("banana"), 1.0);
  auto homographs = net.FindHomographs();
  ASSERT_FALSE(homographs.empty());
  EXPECT_EQ(homographs[0].value, "apple");
}

// ---------------------------------------------------------------- RFD

TEST(RfdTest, ExactFdDiscovered) {
  auto t = table::Table::FromCsv(
      "t", "city,zip,amount\nA,Z1,10\nA,Z1,20\nB,Z2,30\nB,Z2,40\n");
  auto fds = DiscoverRelaxedFds(*t);
  bool found = false;
  for (const RelaxedFd& fd : fds) {
    if (fd.lhs == std::vector<std::string>{"city"} && fd.rhs == "zip") {
      found = true;
      EXPECT_DOUBLE_EQ(fd.confidence, 1.0);
      EXPECT_TRUE(fd.violating_rows.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(RfdTest, RelaxedFdToleratesViolations) {
  workload::DirtyTableOptions options;
  options.num_rows = 400;
  options.num_violations = 12;  // 3% violations
  auto dirty = workload::MakeDirtyTable(options);
  RfdOptions rfd_options;
  rfd_options.min_confidence = 0.9;
  auto fds = DiscoverRelaxedFds(dirty.table, rfd_options);
  const RelaxedFd* city_zip = nullptr;
  for (const RelaxedFd& fd : fds) {
    if (fd.lhs == std::vector<std::string>{"city"} && fd.rhs == "zip") {
      city_zip = &fd;
    }
  }
  ASSERT_NE(city_zip, nullptr);
  EXPECT_GE(city_zip->confidence, 0.9);
  EXPECT_LT(city_zip->confidence, 1.0);
  // The recorded violations are exactly the planted ones (majority holds).
  EXPECT_EQ(city_zip->violating_rows, dirty.violation_rows);
}

TEST(RfdTest, EvaluateSpecificFd) {
  auto t = table::Table::FromCsv("t", "a,b\n1,x\n1,x\n1,y\n2,z\n");
  RelaxedFd fd = EvaluateFd(*t, {"a"}, "b");
  EXPECT_DOUBLE_EQ(fd.confidence, 0.75);  // one of four rows violates
  EXPECT_EQ(fd.violating_rows, (std::vector<size_t>{2}));
}

TEST(RfdTest, KeyColumnsPrunedFromLhs) {
  // "id" is a key: id -> anything is trivial and must not be reported.
  auto t = table::Table::FromCsv("t", "id,v\n1,x\n2,x\n3,y\n");
  auto fds = DiscoverRelaxedFds(*t);
  for (const RelaxedFd& fd : fds) {
    EXPECT_NE(fd.lhs, std::vector<std::string>{"id"});
  }
}

TEST(RfdTest, PairLhsDiscoveredWhenSinglesFail) {
  // c is determined by (a, b) jointly but by neither alone.
  auto t = table::Table::FromCsv(
      "t",
      "a,b,c\n1,1,p\n1,1,p\n1,2,q\n1,2,q\n2,1,r\n2,1,r\n2,2,s\n2,2,s\n");
  RfdOptions options;
  options.min_confidence = 1.0;
  auto fds = DiscoverRelaxedFds(*t, options);
  bool pair_found = false;
  for (const RelaxedFd& fd : fds) {
    if (fd.lhs.size() == 2 && fd.rhs == "c") pair_found = true;
    // Minimality: no single-attribute FD to c should exist at conf 1.0.
    if (fd.lhs.size() == 1 && fd.rhs == "c") {
      FAIL() << "unexpected single FD " << fd.lhs[0] << " -> c";
    }
  }
  EXPECT_TRUE(pair_found);
}

TEST(RfdTest, EvaluateUnknownColumnsYieldsZeroConfidence) {
  auto t = table::Table::FromCsv("t", "a\n1\n");
  RelaxedFd fd = EvaluateFd(*t, {"ghost"}, "a");
  EXPECT_DOUBLE_EQ(fd.confidence, 0.0);
}

}  // namespace
}  // namespace lakekit::enrich
