#include <gtest/gtest.h>

#include "evolution/inclusion_deps.h"
#include "evolution/schema_history.h"
#include "json/parser.h"
#include "workload/generator.h"

namespace lakekit::evolution {
namespace {

// ---------------------------------------------------------------- history

std::vector<json::Value> Docs(std::initializer_list<const char*> raws) {
  std::vector<json::Value> out;
  for (const char* raw : raws) out.push_back(*json::Parse(raw));
  return out;
}

TEST(SchemaHistoryTest, SingleVersion) {
  auto versions = SchemaHistory::ExtractVersions(Docs({
      R"({"_ts": 1, "a": 1, "b": "x"})",
      R"({"_ts": 2, "a": 2, "b": "y"})",
  }));
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 1u);
  EXPECT_EQ((*versions)[0].num_documents, 2u);
  EXPECT_EQ((*versions)[0].first_ts, 1);
  EXPECT_EQ((*versions)[0].last_ts, 2);
  ASSERT_EQ((*versions)[0].properties.size(), 2u);
}

TEST(SchemaHistoryTest, VersionBoundaryOnStructureChange) {
  auto versions = SchemaHistory::ExtractVersions(Docs({
      R"({"_ts": 1, "a": 1})",
      R"({"_ts": 2, "a": 1, "b": "x"})",
      R"({"_ts": 3, "a": 2, "b": "y"})",
  }));
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0].version, 1u);
  EXPECT_EQ((*versions)[1].version, 2u);
  EXPECT_EQ((*versions)[1].num_documents, 2u);
}

TEST(SchemaHistoryTest, DocumentsSortedByTimestamp) {
  // Same structure out of order still collapses to one version.
  auto versions = SchemaHistory::ExtractVersions(Docs({
      R"({"_ts": 5, "a": 1})",
      R"({"_ts": 1, "a": 2})",
      R"({"_ts": 3, "a": 3})",
  }));
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 1u);
  EXPECT_EQ((*versions)[0].first_ts, 1);
  EXPECT_EQ((*versions)[0].last_ts, 5);
}

TEST(SchemaHistoryTest, MissingTimestampRejected) {
  EXPECT_FALSE(SchemaHistory::ExtractVersions(Docs({R"({"a": 1})"})).ok());
  EXPECT_FALSE(SchemaHistory::ExtractVersions({}).ok());
}

TEST(SchemaHistoryTest, DiffDetectsAddRemove) {
  EntityTypeVersion v1;
  v1.properties = {{"a", "int"}, {"b", "string"}};
  EntityTypeVersion v2;
  v2.properties = {{"a", "int"}, {"c", "bool"}};
  auto changes = SchemaHistory::DiffVersions(v1, v2);
  // b removed (string), c added (bool) — types differ, so no rename.
  ASSERT_EQ(changes.size(), 2u);
  bool removed_b = false;
  bool added_c = false;
  for (const SchemaChange& c : changes) {
    if (c.kind == ChangeKind::kRemoveProperty && c.property == "b") {
      removed_b = true;
    }
    if (c.kind == ChangeKind::kAddProperty && c.property == "c") {
      added_c = true;
    }
  }
  EXPECT_TRUE(removed_b);
  EXPECT_TRUE(added_c);
}

TEST(SchemaHistoryTest, DiffDetectsRenameBySameType) {
  EntityTypeVersion v1;
  v1.properties = {{"name", "string"}};
  EntityTypeVersion v2;
  v2.properties = {{"full_name", "string"}};
  auto changes = SchemaHistory::DiffVersions(v1, v2);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kRenameProperty);
  EXPECT_EQ(changes[0].property, "name");
  EXPECT_EQ(changes[0].detail, "full_name");
  EXPECT_EQ(changes[0].ToString(), "rename name -> full_name");
}

TEST(SchemaHistoryTest, DiffDetectsTypeChange) {
  EntityTypeVersion v1;
  v1.properties = {{"age", "string"}};
  EntityTypeVersion v2;
  v2.properties = {{"age", "int"}};
  auto changes = SchemaHistory::DiffVersions(v1, v2);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kTypeChange);
  EXPECT_EQ(changes[0].detail, "int");
}

TEST(SchemaHistoryTest, ReconstructsPlantedEvolution) {
  auto corpus = workload::MakeEvolvingCorpus({});
  auto versions = SchemaHistory::ExtractVersions(corpus.documents);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 3u);
  auto changes = SchemaHistory::ExtractChanges(corpus.documents);
  ASSERT_TRUE(changes.ok());
  // v1->v2: add email. v2->v3: rename name->full_name, remove age.
  bool add_email = false;
  bool rename_name = false;
  bool remove_age = false;
  for (const SchemaChange& c : *changes) {
    if (c.kind == ChangeKind::kAddProperty && c.property == "email") {
      add_email = true;
    }
    if (c.kind == ChangeKind::kRenameProperty && c.property == "name" &&
        c.detail == "full_name") {
      rename_name = true;
    }
    if (c.kind == ChangeKind::kRemoveProperty && c.property == "age") {
      remove_age = true;
    }
  }
  EXPECT_TRUE(add_email);
  EXPECT_TRUE(rename_name);
  EXPECT_TRUE(remove_age);
}

// ---------------------------------------------------------------- INDs

TEST(InclusionDepsTest, HoldsInclusionExactCheck) {
  auto orders = table::Table::FromCsv("orders", "uid\n1\n2\n1\n");
  auto users = table::Table::FromCsv("users", "id\n1\n2\n3\n");
  EXPECT_TRUE(HoldsInclusion(*orders, {0}, *users, {0}));
  EXPECT_FALSE(HoldsInclusion(*users, {0}, *orders, {0}));  // 3 missing
}

TEST(InclusionDepsTest, DiscoversUnaryInd) {
  auto orders = table::Table::FromCsv("orders", "uid,total\n1,10\n2,20\n");
  auto users = table::Table::FromCsv("users", "id,name\n1,ada\n2,bob\n3,eve\n");
  auto inds = DiscoverInclusionDependencies({*orders, *users});
  bool found = false;
  for (const InclusionDependency& ind : inds) {
    if (ind.dependent_table == "orders" &&
        ind.dependent_columns == std::vector<std::string>{"uid"} &&
        ind.referenced_table == "users" &&
        ind.referenced_columns == std::vector<std::string>{"id"}) {
      found = true;
      EXPECT_EQ(ind.ToString(), "orders[uid] <= users[id]");
    }
  }
  EXPECT_TRUE(found);
}

TEST(InclusionDepsTest, DiscoversBinaryInd) {
  // (city, zip) of deliveries is included in (city, zip) of addresses, but
  // neither a cross pairing nor the reverse holds.
  auto addresses = table::Table::FromCsv(
      "addresses", "city,zip\nA,Z1\nB,Z2\nC,Z3\n");
  auto deliveries = table::Table::FromCsv(
      "deliveries", "dcity,dzip\nA,Z1\nB,Z2\n");
  IndOptions options;
  options.max_arity = 2;
  auto inds = DiscoverInclusionDependencies({*addresses, *deliveries}, options);
  bool binary_found = false;
  for (const InclusionDependency& ind : inds) {
    if (ind.arity() == 2 && ind.dependent_table == "deliveries" &&
        ind.referenced_table == "addresses") {
      binary_found = true;
      EXPECT_EQ(ind.dependent_columns,
                (std::vector<std::string>{"dcity", "dzip"}));
    }
  }
  EXPECT_TRUE(binary_found);
}

TEST(InclusionDepsTest, BinaryIndRequiresTupleLevelInclusion) {
  // Column-wise inclusion holds but tuple (2, X) never appears in ref.
  auto ref = table::Table::FromCsv("ref", "a,b\n1,X\n2,Y\n");
  auto dep = table::Table::FromCsv("dep", "a,b\n1,X\n2,X\n");
  EXPECT_TRUE(HoldsInclusion(*dep, {0}, *ref, {0}));
  EXPECT_TRUE(HoldsInclusion(*dep, {1}, *ref, {1}));
  EXPECT_FALSE(HoldsInclusion(*dep, {0, 1}, *ref, {0, 1}));
}

TEST(InclusionDepsTest, MinDistinctFiltersTinyColumns) {
  auto a = table::Table::FromCsv("a", "flag\n0\n0\n");
  auto b = table::Table::FromCsv("b", "bit\n0\n1\n");
  IndOptions options;
  options.min_distinct = 2;
  auto inds = DiscoverInclusionDependencies({*a, *b}, options);
  for (const InclusionDependency& ind : inds) {
    EXPECT_NE(ind.dependent_table, "a");  // single-valued column filtered
  }
}

}  // namespace
}  // namespace lakekit::evolution
