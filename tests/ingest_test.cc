#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "ingest/format_detect.h"
#include "ingest/log_template.h"
#include "ingest/profiler.h"
#include "ingest/structural_extractor.h"
#include "json/parser.h"

namespace lakekit::ingest {
namespace {

using storage::DataFormat;

// ---------------------------------------------------------------- format

TEST(FormatDetectTest, ByExtension) {
  EXPECT_EQ(DetectFormat("data.csv", ""), DataFormat::kCsv);
  EXPECT_EQ(DetectFormat("DATA.CSV", ""), DataFormat::kCsv);
  EXPECT_EQ(DetectFormat("d.json", ""), DataFormat::kJson);
  EXPECT_EQ(DetectFormat("d.ndjson", ""), DataFormat::kJson);
  EXPECT_EQ(DetectFormat("server.log", ""), DataFormat::kLog);
  EXPECT_EQ(DetectFormat("net.graphml", ""), DataFormat::kGraph);
  EXPECT_EQ(DetectFormat("img.png", ""), DataFormat::kBinary);
}

TEST(FormatDetectTest, SniffJson) {
  EXPECT_EQ(SniffContent(R"({"a": 1})"), DataFormat::kJson);
  EXPECT_EQ(SniffContent("[1, 2, 3]"), DataFormat::kJson);
  EXPECT_EQ(SniffContent("{\"a\":1}\n{\"a\":2}\n"), DataFormat::kJson);
}

TEST(FormatDetectTest, SniffCsv) {
  EXPECT_EQ(SniffContent("a,b,c\n1,2,3\n4,5,6\n"), DataFormat::kCsv);
  // Inconsistent comma counts are not CSV.
  EXPECT_NE(SniffContent("a,b\nword\nmore words here\n"), DataFormat::kCsv);
}

TEST(FormatDetectTest, SniffLog) {
  EXPECT_EQ(
      SniffContent("2024-01-01 INFO started\n2024-01-02 WARN slow\n"),
      DataFormat::kLog);
  EXPECT_EQ(SniffContent("[pid 12] booting\n[pid 13] ready\n"),
            DataFormat::kLog);
}

TEST(FormatDetectTest, SniffBinary) {
  std::string binary("ELF\x00\x01", 5);
  EXPECT_EQ(SniffContent(binary), DataFormat::kBinary);
}

TEST(FormatDetectTest, UnknownContent) {
  EXPECT_EQ(SniffContent(""), DataFormat::kUnknown);
  EXPECT_EQ(SniffContent("just a plain sentence"), DataFormat::kUnknown);
}

TEST(FormatDetectTest, ExtensionBeatsContent) {
  // A .csv file with JSON-ish content: extension wins (GEMMS detects format
  // first, then parses).
  EXPECT_EQ(DetectFormat("x.csv", "{\"a\":1}"), DataFormat::kCsv);
}

// ---------------------------------------------------------------- GEMMS

TEST(StructuralExtractorTest, FlatObject) {
  auto doc = json::Parse(R"({"id": 1, "name": "ada", "score": 1.5})");
  StructureNode root = StructuralExtractor::InferJson(*doc);
  EXPECT_EQ(root.type, "object");
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.FindChild("id")->type, "int");
  EXPECT_EQ(root.FindChild("name")->type, "string");
  EXPECT_EQ(root.FindChild("score")->type, "double");
}

TEST(StructuralExtractorTest, NestedObjectAndArray) {
  auto doc = json::Parse(R"({"tags": ["a", "b"], "addr": {"city": "delft"}})");
  StructureNode root = StructuralExtractor::InferJson(*doc);
  const StructureNode* tags = root.FindChild("tags");
  ASSERT_NE(tags, nullptr);
  EXPECT_EQ(tags->type, "array");
  ASSERT_EQ(tags->children.size(), 1u);
  EXPECT_EQ(tags->children[0].type, "string");
  const StructureNode* addr = root.FindChild("addr");
  ASSERT_NE(addr, nullptr);
  EXPECT_EQ(addr->type, "object");
  EXPECT_EQ(addr->FindChild("city")->type, "string");
}

TEST(StructuralExtractorTest, MergeMarksOptionalFields) {
  auto d1 = json::Parse(R"({"a": 1, "b": "x"})");
  auto d2 = json::Parse(R"({"a": 2})");
  auto merged = StructuralExtractor::InferJsonDocuments({*d1, *d2});
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(merged->FindChild("a")->optional);
  EXPECT_TRUE(merged->FindChild("b")->optional);
}

TEST(StructuralExtractorTest, MergeWidensTypes) {
  auto d1 = json::Parse(R"({"x": 1})");
  auto d2 = json::Parse(R"({"x": 2.5})");
  auto d3 = json::Parse(R"({"x": "str"})");
  auto merged12 = StructuralExtractor::InferJsonDocuments({*d1, *d2});
  EXPECT_EQ(merged12->FindChild("x")->type, "double");
  auto merged13 = StructuralExtractor::InferJsonDocuments({*d1, *d3});
  EXPECT_EQ(merged13->FindChild("x")->type, "mixed");
}

TEST(StructuralExtractorTest, MergeNullMakesOptional) {
  auto d1 = json::Parse(R"({"x": null})");
  auto d2 = json::Parse(R"({"x": 5})");
  auto merged = StructuralExtractor::InferJsonDocuments({*d1, *d2});
  EXPECT_EQ(merged->FindChild("x")->type, "int");
  EXPECT_TRUE(merged->FindChild("x")->optional);
}

TEST(StructuralExtractorTest, ArrayElementsMerge) {
  auto doc = json::Parse(R"([{"a": 1}, {"a": 2, "b": 3}])");
  StructureNode root = StructuralExtractor::InferJson(*doc);
  EXPECT_EQ(root.type, "array");
  ASSERT_EQ(root.children.size(), 1u);
  const StructureNode& item = root.children[0];
  EXPECT_EQ(item.type, "object");
  EXPECT_FALSE(item.FindChild("a")->optional);
  EXPECT_TRUE(item.FindChild("b")->optional);
}

TEST(StructuralExtractorTest, CsvStructure) {
  auto node = StructuralExtractor::InferCsv("id,name\n1,ada\n", "people");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->type, "table");
  ASSERT_EQ(node->children.size(), 2u);
  EXPECT_EQ(node->children[0].type, "column:int64");
  EXPECT_EQ(node->children[1].type, "column:string");
}

TEST(StructuralExtractorTest, EmptyDocumentsRejected) {
  EXPECT_FALSE(StructuralExtractor::InferJsonDocuments({}).ok());
}

TEST(StructuralExtractorTest, TreeSizeAndToString) {
  auto doc = json::Parse(R"({"a": {"b": 1}})");
  StructureNode root = StructuralExtractor::InferJson(*doc);
  EXPECT_EQ(root.TreeSize(), 3u);
  std::string rendered = root.ToString();
  EXPECT_NE(rendered.find("a: object"), std::string::npos);
  EXPECT_NE(rendered.find("b: int"), std::string::npos);
}

// ---------------------------------------------------------------- DATAMARAN

TEST(LogTemplateTest, TokenizeAndVariableDetection) {
  EXPECT_EQ(LogTemplateExtractor::TokenizeLine("a  b\tc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(LogTemplateExtractor::IsVariableToken("user42"));
  EXPECT_TRUE(LogTemplateExtractor::IsVariableToken("192.168.0.1"));
  EXPECT_FALSE(LogTemplateExtractor::IsVariableToken("INFO"));
}

TEST(LogTemplateTest, ExtractsPlantedTemplates) {
  std::string log;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    log += "INFO user u" + std::to_string(rng.Below(1000)) +
           " logged in from host h" + std::to_string(rng.Below(50)) + "\n";
  }
  for (int i = 0; i < 100; ++i) {
    log += "WARN disk usage at " + std::to_string(rng.Below(100)) +
           " percent\n";
  }
  LogTemplateExtractor extractor;
  auto templates = extractor.Extract(log);
  ASSERT_GE(templates.size(), 2u);
  // Highest-support template is the login line.
  EXPECT_EQ(templates[0].Pattern(), "INFO user <*> logged in from host <*>");
  EXPECT_EQ(templates[0].support, 200u);
  EXPECT_EQ(templates[1].Pattern(), "WARN disk usage at <*> percent");
  EXPECT_EQ(templates[1].support, 100u);
}

TEST(LogTemplateTest, CoverageThresholdPrunesNoise) {
  std::string log;
  for (int i = 0; i < 100; ++i) {
    log += "GET /api/items/" + std::to_string(i) + " 200\n";
  }
  log += "completely unique noise line alpha beta\n";
  LogTemplateOptions options;
  options.min_coverage = 0.05;
  LogTemplateExtractor extractor(options);
  auto templates = extractor.Extract(log);
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].support, 100u);
}

TEST(LogTemplateTest, RefinementMergesNearIdentical) {
  // Same arity, one differing literal position -> should merge into one
  // template with a wildcard there.
  std::string log;
  for (int i = 0; i < 30; ++i) log += "job step alpha finished ok\n";
  for (int i = 0; i < 30; ++i) log += "job step beta finished ok\n";
  LogTemplateOptions options;
  options.min_coverage = 0.01;
  LogTemplateExtractor extractor(options);
  auto templates = extractor.Extract(log);
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].Pattern(), "job step <*> finished ok");
  EXPECT_EQ(templates[0].support, 60u);
}

TEST(LogTemplateTest, MatchAssignsLines) {
  LogTemplate t;
  t.tokens = {"INFO", "user", "<*>", "login"};
  EXPECT_TRUE(t.Matches("INFO user u77 login"));
  EXPECT_FALSE(t.Matches("INFO user u77 logout"));
  EXPECT_FALSE(t.Matches("INFO user login"));  // arity mismatch
  auto idx = LogTemplateExtractor::Match({t}, "INFO user x login");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  EXPECT_FALSE(LogTemplateExtractor::Match({t}, "other").has_value());
}

TEST(LogTemplateTest, EmptyLogYieldsNothing) {
  LogTemplateExtractor extractor;
  EXPECT_TRUE(extractor.Extract("").empty());
  EXPECT_TRUE(extractor.Extract("\n\n\n").empty());
}

// ---------------------------------------------------------------- Skluma

TEST(ProfilerTest, NumericColumnStats) {
  std::vector<table::Value> values{table::Value(int64_t{1}),
                                   table::Value(int64_t{2}),
                                   table::Value(int64_t{3}),
                                   table::Value(int64_t{4}),
                                   table::Value()};
  ColumnProfile p = Profiler::ProfileColumn("x", values);
  EXPECT_EQ(p.row_count, 5u);
  EXPECT_EQ(p.null_count, 1u);
  EXPECT_EQ(p.distinct_count, 4u);
  EXPECT_DOUBLE_EQ(p.min, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 4.0);
  EXPECT_DOUBLE_EQ(p.mean, 2.5);
  EXPECT_NEAR(p.stddev, 1.118, 0.001);
  EXPECT_FALSE(p.is_candidate_key);  // has a null
  EXPECT_DOUBLE_EQ(p.null_fraction(), 0.2);
  EXPECT_DOUBLE_EQ(p.uniqueness(), 1.0);
}

TEST(ProfilerTest, CandidateKeyDetection) {
  std::vector<table::Value> unique{table::Value(int64_t{1}),
                                   table::Value(int64_t{2}),
                                   table::Value(int64_t{3})};
  EXPECT_TRUE(Profiler::ProfileColumn("id", unique).is_candidate_key);
  std::vector<table::Value> dup{table::Value(int64_t{1}),
                                table::Value(int64_t{1})};
  EXPECT_FALSE(Profiler::ProfileColumn("id", dup).is_candidate_key);
}

TEST(ProfilerTest, StringColumnStats) {
  std::vector<table::Value> values{table::Value("aa"), table::Value("bbbb"),
                                   table::Value("aa")};
  ColumnProfile p = Profiler::ProfileColumn("s", values, /*top_k=*/2);
  EXPECT_EQ(p.type, table::DataType::kString);
  EXPECT_NEAR(p.avg_length, 8.0 / 3.0, 1e-9);
  ASSERT_GE(p.top_values.size(), 1u);
  EXPECT_EQ(p.top_values[0].first, "aa");
  EXPECT_EQ(p.top_values[0].second, 2u);
}

TEST(ProfilerTest, TopValuesCapped) {
  std::vector<table::Value> values;
  // emplace_back sidesteps a GCC 12 -Wmaybe-uninitialized false positive on
  // the moved-from temporary's variant storage.
  for (int i = 0; i < 100; ++i) values.emplace_back(int64_t{i});
  ColumnProfile p = Profiler::ProfileColumn("x", values, /*top_k=*/3);
  EXPECT_EQ(p.top_values.size(), 3u);
}

TEST(ProfilerTest, ProfileCsvFile) {
  auto profile =
      Profiler::ProfileFile("flights.csv", "lake/flights.csv",
                            "flight,delay\nBA1,5\nKL2,12\nAF3,\n");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->format, DataFormat::kCsv);
  EXPECT_EQ(profile->extension, "csv");
  EXPECT_EQ(profile->num_records, 3u);
  ASSERT_EQ(profile->columns.size(), 2u);
  EXPECT_EQ(profile->columns[1].null_count, 1u);
}

TEST(ProfilerTest, ProfileJsonFile) {
  auto profile = Profiler::ProfileFile(
      "people.json", "lake/people.json",
      R"([{"name":"ada","age":36},{"name":"bob","age":41}])");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->format, DataFormat::kJson);
  EXPECT_EQ(profile->num_records, 2u);
  EXPECT_EQ(profile->columns.size(), 2u);
}

TEST(ProfilerTest, ProfileNdjsonFile) {
  auto profile = Profiler::ProfileFile("events.ndjson", "lake/events.ndjson",
                                       "{\"e\":1}\n{\"e\":2}\n{\"e\":3}\n");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_records, 3u);
}

TEST(ProfilerTest, ProfileLogFileExtractsKeywords) {
  std::string log;
  for (int i = 0; i < 50; ++i) {
    log += "2024-01-01 connection timeout while fetching shard\n";
  }
  auto profile = Profiler::ProfileFile("svc.log", "lake/svc.log", log);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->format, DataFormat::kLog);
  EXPECT_FALSE(profile->keywords.empty());
  // "connection" and "timeout" should be among top keywords.
  bool found = false;
  for (const auto& kw : profile->keywords) {
    if (kw == "connection" || kw == "timeout") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, KeywordsSkipStopwordsAndNumbers) {
  auto keywords =
      Profiler::ExtractKeywords("the cat and the dog 42 42 42 near the barn");
  for (const auto& kw : keywords) {
    EXPECT_NE(kw, "the");
    EXPECT_NE(kw, "and");
    EXPECT_NE(kw, "42");
  }
}

}  // namespace
}  // namespace lakekit::ingest
