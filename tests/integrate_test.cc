#include <gtest/gtest.h>

#include "integrate/full_disjunction.h"
#include "integrate/mapping.h"
#include "integrate/schema_match.h"
#include "table/table.h"

namespace lakekit::integrate {
namespace {

// ---------------------------------------------------------------- matching

TEST(SchemaMatchTest, IdenticalColumnsScoreHigh) {
  auto a = table::Table::FromCsv("a", "city,pop\ndelft,100\nleiden,120\n");
  auto b = table::Table::FromCsv("b", "city,pop\ndelft,100\nhague,500\n");
  SchemaMatcher matcher;
  // Identical name (1.0) + 1/3 value overlap -> 0.5*1 + 0.5*0.33 = 0.67.
  EXPECT_GT(matcher.ColumnSimilarity(*a, 0, *b, 0), 0.6);
  // city vs pop: low.
  EXPECT_LT(matcher.ColumnSimilarity(*a, 0, *b, 1), 0.3);
}

TEST(SchemaMatchTest, MatchIsOneToOne) {
  auto a = table::Table::FromCsv("a", "city,population\ndelft,100\n");
  auto b = table::Table::FromCsv(
      "b", "city_name,population_count\ndelft,100\n");
  SchemaMatcher matcher;
  auto matches = matcher.Match(*a, *b);
  ASSERT_EQ(matches.size(), 2u);
  std::set<size_t> left;
  std::set<size_t> right;
  for (const auto& m : matches) {
    EXPECT_TRUE(left.insert(m.left_col).second);
    EXPECT_TRUE(right.insert(m.right_col).second);
  }
}

TEST(SchemaMatchTest, ValueOverlapMatchesRenamedColumn) {
  // Completely different names but identical instance values.
  auto a = table::Table::FromCsv("a", "kode\nNL\nDE\nFR\nBE\nUK\n");
  auto b = table::Table::FromCsv("b", "country\nNL\nDE\nFR\nBE\nES\n");
  SchemaMatcher matcher;
  auto matches = matcher.Match(*a, *b);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].left_col, 0u);
  EXPECT_EQ(matches[0].right_col, 0u);
}

TEST(SchemaMatchTest, NoMatchBelowThreshold) {
  auto a = table::Table::FromCsv("a", "alpha\nx1\nx2\n");
  auto b = table::Table::FromCsv("b", "omega\ny1\ny2\n");
  SchemaMatcher matcher;
  EXPECT_TRUE(matcher.Match(*a, *b).empty());
}

// ---------------------------------------------------------------- mapping

TEST(IntegrateSchemasTest, MatchedColumnsCollapse) {
  auto a = table::Table::FromCsv("a", "city,mayor\ndelft,ada\n");
  auto b = table::Table::FromCsv("b", "city,area\ndelft,24\n");
  auto result = IntegrateSchemas({*a, *b});
  ASSERT_TRUE(result.ok());
  // city collapses; mayor + area carried over: 3 integrated columns.
  EXPECT_EQ(result->integrated.num_fields(), 3u);
  EXPECT_TRUE(result->integrated.HasField("city"));
  EXPECT_TRUE(result->integrated.HasField("mayor"));
  EXPECT_TRUE(result->integrated.HasField("area"));
  ASSERT_EQ(result->mappings.size(), 2u);
  // Both sources map their city column to the same integrated column.
  EXPECT_EQ(result->mappings[0].column_map.at(0),
            result->mappings[1].column_map.at(0));
}

TEST(IntegrateSchemasTest, EmptySourcesRejected) {
  EXPECT_FALSE(IntegrateSchemas({}).ok());
}

TEST(ApplyMappingsTest, OuterUnionWithNulls) {
  auto a = table::Table::FromCsv("a", "city,mayor\ndelft,ada\n");
  auto b = table::Table::FromCsv("b", "city,area\nleiden,22\n");
  auto integration = IntegrateSchemas({*a, *b});
  ASSERT_TRUE(integration.ok());
  auto merged = ApplyMappings({*a, *b}, *integration);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 2u);
  // Row from a: area NULL; row from b: mayor NULL.
  size_t area_col = *merged->schema().IndexOf("area");
  size_t mayor_col = *merged->schema().IndexOf("mayor");
  EXPECT_TRUE(merged->at(0, area_col).is_null());
  EXPECT_TRUE(merged->at(1, mayor_col).is_null());
}

// ---------------------------------------------------------------- FD

TEST(FullDisjunctionTest, JoinableTuplesCombine) {
  // Three tables chained by shared keys — the classic FD example.
  auto a = table::Table::FromCsv("a", "city,country\ndelft,NL\n");
  auto b = table::Table::FromCsv("b", "city,population\ndelft,104000\n");
  auto c = table::Table::FromCsv("c", "country,continent\nNL,Europe\n");
  auto fd = IntegrateTables({*a, *b, *c});
  ASSERT_TRUE(fd.ok());
  // One fully-connected tuple should exist with all 4 attributes non-null.
  bool complete_found = false;
  for (size_t r = 0; r < fd->num_rows(); ++r) {
    bool complete = true;
    for (size_t col = 0; col < fd->num_columns(); ++col) {
      if (fd->at(r, col).is_null()) complete = false;
    }
    if (complete) complete_found = true;
  }
  EXPECT_TRUE(complete_found);
  // Subsumed partial tuples are gone: exactly one row remains.
  EXPECT_EQ(fd->num_rows(), 1u);
}

TEST(FullDisjunctionTest, UnjoinableTuplesStayApart) {
  auto a = table::Table::FromCsv("a", "city,country\ndelft,NL\n");
  auto b = table::Table::FromCsv("b", "city,population\nmunich,150\n");
  auto fd = IntegrateTables({*a, *b});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->num_rows(), 2u);  // nothing joins, nothing subsumes
}

TEST(FullDisjunctionTest, PartialOverlapKeepsBothConnectedAndLonely) {
  auto a = table::Table::FromCsv("a", "k,x\n1,a\n2,b\n");
  auto b = table::Table::FromCsv("b", "k,y\n1,p\n3,q\n");
  auto fd = IntegrateTables({*a, *b});
  ASSERT_TRUE(fd.ok());
  // Expected: (1,a,p) merged, (2,b,NULL), (3,NULL,q).
  EXPECT_EQ(fd->num_rows(), 3u);
  size_t complete_rows = 0;
  for (size_t r = 0; r < fd->num_rows(); ++r) {
    bool complete = true;
    for (size_t c = 0; c < fd->num_columns(); ++c) {
      if (fd->at(r, c).is_null()) complete = false;
    }
    if (complete) ++complete_rows;
  }
  EXPECT_EQ(complete_rows, 1u);
}

TEST(FullDisjunctionTest, TupleBudgetGuard) {
  // Two identical single-column tables of distinct values with an absurdly
  // low budget trigger the guard.
  std::string csv = "k\n";
  for (int i = 0; i < 50; ++i) csv += std::to_string(i) + "\n";
  auto a = table::Table::FromCsv("a", csv);
  auto b = table::Table::FromCsv("b", csv);
  FullDisjunctionOptions options;
  options.max_tuples = 10;
  auto integration = IntegrateSchemas({*a, *b});
  ASSERT_TRUE(integration.ok());
  auto fd = FullDisjunction({*a, *b}, *integration, options);
  EXPECT_FALSE(fd.ok());
}

TEST(FullDisjunctionTest, DeduplicatesIdenticalRows) {
  auto a = table::Table::FromCsv("a", "k,v\n1,x\n1,x\n");
  auto b = table::Table::FromCsv("b", "k,v\n1,x\n");
  auto fd = IntegrateTables({*a, *b});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->num_rows(), 1u);
}

}  // namespace
}  // namespace lakekit::integrate
