#include <gtest/gtest.h>

#include <string>

#include "json/parser.h"
#include "json/value.h"
#include "json/writer.h"

namespace lakekit::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{4}).is_int());
  EXPECT_TRUE(Value(4.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
  EXPECT_TRUE(Value(int64_t{4}).is_number());
  EXPECT_TRUE(Value(4.5).is_number());
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  Object o;
  o.Set("z", Value(1));
  o.Set("a", Value(2));
  o.Set("m", Value(3));
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o.entries()[0].first, "z");
  EXPECT_EQ(o.entries()[1].first, "a");
  EXPECT_EQ(o.entries()[2].first, "m");
}

TEST(JsonValueTest, ObjectOverwriteKeepsPosition) {
  Object o;
  o.Set("a", Value(1));
  o.Set("b", Value(2));
  o.Set("a", Value(9));
  EXPECT_EQ(o.entries()[0].first, "a");
  EXPECT_EQ(o.entries()[0].second.as_int(), 9);
  EXPECT_EQ(o.size(), 2u);
}

TEST(JsonValueTest, ObjectErase) {
  Object o;
  o.Set("a", Value(1));
  EXPECT_TRUE(o.Erase("a"));
  EXPECT_FALSE(o.Erase("a"));
  EXPECT_TRUE(o.empty());
}

TEST(JsonValueTest, GetHelpers) {
  Object o;
  o.Set("name", Value("flights"));
  o.Set("rows", Value(int64_t{320}));
  Value v(std::move(o));
  EXPECT_EQ(v.GetString("name"), "flights");
  EXPECT_EQ(v.GetInt("rows"), 320);
  EXPECT_EQ(v.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(v.GetInt("missing", -1), -1);
  EXPECT_EQ(v.Get("missing"), nullptr);
}

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-1e3")->as_double(), -1000.0);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParserTest, IntVsDoubleDistinction) {
  EXPECT_TRUE(Parse("7")->is_int());
  EXPECT_TRUE(Parse("7.0")->is_double());
  EXPECT_TRUE(Parse("7e0")->is_double());
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(Parse(R"("line\nbreak")")->as_string(), "line\nbreak");
  EXPECT_EQ(Parse(R"("tab\there")")->as_string(), "tab\there");
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParserTest, NestedStructures) {
  auto r = Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(r.ok());
  const Value& v = *r;
  ASSERT_TRUE(v.is_object());
  const Value* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].Get("b")->is_null());
  EXPECT_TRUE(v.Get("c")->Get("d")->as_bool());
}

TEST(JsonParserTest, EmptyContainers) {
  EXPECT_TRUE(Parse("{}")->as_object().empty());
  EXPECT_TRUE(Parse("[]")->as_array().empty());
  EXPECT_TRUE(Parse(" [ ] ")->as_array().empty());
}

TEST(JsonParserTest, Whitespace) {
  auto r = Parse("  {\n\t\"k\" : 1 }\n  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetInt("k"), 1);
}

TEST(JsonParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("{\"a\":1} garbage").ok());
  EXPECT_FALSE(Parse("-").ok());
}

TEST(JsonParserTest, ErrorMessagesCarryOffsets) {
  auto r = Parse("[1, x]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("byte"), std::string::npos);
}

TEST(JsonParserTest, DeepNestingRejected) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonParserTest, IntegerOverflowFallsBackToDouble) {
  auto r = Parse("99999999999999999999999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
}

TEST(JsonWriterTest, RoundTrip) {
  const std::string doc =
      R"({"name":"lake","count":3,"ratio":0.5,"ok":true,"nil":null,"tags":["a","b"]})";
  auto parsed = Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(Write(*parsed), doc);
}

TEST(JsonWriterTest, DoubleAlwaysHasMarker) {
  // Doubles serialize so they re-parse as doubles.
  EXPECT_EQ(Write(Value(2.0)), "2.0");
  auto reparsed = Parse(Write(Value(2.0)));
  EXPECT_TRUE(reparsed->is_double());
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(Write(Value(std::string("a\x01") + "b")), "\"a\\u0001b\"");
  EXPECT_EQ(Write(Value("q\"q")), R"("q\"q")");
  EXPECT_EQ(Write(Value("back\\slash")), R"("back\\slash")");
}

TEST(JsonWriterTest, PrettyContainsNewlines) {
  auto v = Parse(R"({"a":1,"b":[2,3]})");
  std::string pretty = WritePretty(*v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  // Pretty output re-parses to the same value.
  EXPECT_EQ(*Parse(pretty), *v);
}

TEST(JsonWriterTest, WriteIsByteStable) {
  auto a = Parse(R"({"x":1,"y":[true,null]})");
  EXPECT_EQ(Write(*a), Write(*Parse(Write(*a))));
}

TEST(JsonParseLinesTest, NdjsonParsing) {
  auto r = ParseLines("{\"a\":1}\n\n{\"a\":2}\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].GetInt("a"), 1);
  EXPECT_EQ((*r)[1].GetInt("a"), 2);
}

TEST(JsonParseLinesTest, ReportsFailingLine) {
  auto r = ParseLines("{\"a\":1}\nnot json\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace lakekit::json
