#include <gtest/gtest.h>

#include "discovery/corpus.h"
#include "discovery/juneau.h"
#include "provenance/variable_dep.h"

namespace lakekit::discovery {
namespace {

/// Fixture lake tailored to the three Juneau tasks:
///  - "train"      : the query table (people features, some nulls)
///  - "more_rows"  : same schema, disjoint rows  -> best for kAugmentTraining
///  - "extra_cols" : shares the id column, adds new attributes
///                                               -> best for kAugmentFeatures
///  - "clean_copy" : same schema, overlapping rows, no nulls
///                                               -> best for kCleaning
///  - "unrelated"  : nothing in common
class JuneauTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus();
    auto add_csv = [&](const std::string& name, std::string csv) {
      auto t = table::Table::FromCsv(name, csv);
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(corpus_->AddTable(std::move(*t)).ok());
    };
    // Query: ids 0..19, with nulls in "score".
    std::string train = "user_id,label,score\n";
    for (int i = 0; i < 20; ++i) {
      train += "u" + std::to_string(i) + ",l" + std::to_string(i % 3) + "," +
               (i % 4 == 0 ? "" : std::to_string(i)) + "\n";
    }
    add_csv("train", train);
    // Same schema, different users.
    std::string more = "user_id,label,score\n";
    for (int i = 100; i < 120; ++i) {
      more += "u" + std::to_string(i) + ",l" + std::to_string(i % 3) + "," +
              std::to_string(i) + "\n";
    }
    add_csv("more_rows", more);
    // Shares user_id values; new attributes.
    std::string extra = "user_id,age,city,income\n";
    for (int i = 0; i < 20; ++i) {
      extra += "u" + std::to_string(i) + "," + std::to_string(20 + i) +
               ",city" + std::to_string(i % 4) + "," +
               std::to_string(1000 * i) + "\n";
    }
    add_csv("extra_cols", extra);
    // Near-duplicate with all nulls filled.
    std::string clean = "user_id,label,score\n";
    for (int i = 0; i < 20; ++i) {
      clean += "u" + std::to_string(i) + ",l" + std::to_string(i % 3) + "," +
               std::to_string(i) + "\n";
    }
    add_csv("clean_copy", clean);
    // Unrelated.
    add_csv("unrelated", "sensor,reading\ns1,0.5\ns2,0.7\n");

    finder_ = new JuneauFinder(corpus_);
  }
  static void TearDownTestSuite() {
    delete finder_;
    delete corpus_;
  }

  static size_t Idx(const std::string& name) {
    return *corpus_->TableIndex(name);
  }

  static Corpus* corpus_;
  static JuneauFinder* finder_;
};

Corpus* JuneauTest::corpus_ = nullptr;
JuneauFinder* JuneauTest::finder_ = nullptr;

TEST_F(JuneauTest, SignalsReflectTableRelationships) {
  JuneauSignals same_schema =
      finder_->ComputeSignals(Idx("train"), Idx("more_rows"));
  EXPECT_DOUBLE_EQ(same_schema.schema_overlap, 1.0);
  EXPECT_LT(same_schema.value_overlap, 0.3);   // disjoint users
  EXPECT_GT(same_schema.new_instance_rate, 0.6);

  JuneauSignals joinable =
      finder_->ComputeSignals(Idx("train"), Idx("extra_cols"));
  EXPECT_GT(joinable.value_overlap, 0.7);       // shared user_id values
  EXPECT_GT(joinable.new_attribute_rate, 0.5);  // age/city/income are new

  JuneauSignals dup = finder_->ComputeSignals(Idx("train"), Idx("clean_copy"));
  EXPECT_DOUBLE_EQ(dup.schema_overlap, 1.0);
  EXPECT_GT(dup.null_improvement, 0.2);  // clean copy fills the nulls

  JuneauSignals noise = finder_->ComputeSignals(Idx("train"), Idx("unrelated"));
  EXPECT_LT(noise.schema_overlap, 0.5);
  EXPECT_LT(noise.value_overlap, 0.1);
}

TEST_F(JuneauTest, TaskWeightingPicksTheRightTable) {
  auto top = [&](JuneauTask task) {
    auto matches = finder_->TopKForTask(Idx("train"), task, 1);
    return matches.empty() ? std::string() : matches[0].table_name;
  };
  EXPECT_EQ(top(JuneauTask::kAugmentTraining), "more_rows");
  EXPECT_EQ(top(JuneauTask::kAugmentFeatures), "extra_cols");
  EXPECT_EQ(top(JuneauTask::kCleaning), "clean_copy");
}

TEST_F(JuneauTest, UnrelatedTableRanksLast) {
  for (JuneauTask task : {JuneauTask::kAugmentTraining,
                          JuneauTask::kAugmentFeatures, JuneauTask::kCleaning}) {
    auto matches = finder_->TopKForTask(Idx("train"), task, 10);
    ASSERT_FALSE(matches.empty());
    EXPECT_NE(matches[0].table_name, "unrelated") << JuneauTaskName(task);
  }
}

TEST_F(JuneauTest, ProvenanceSignalBoostsWorkflowSiblings) {
  // Two tables produced by the same workflow shape.
  provenance::VariableDependencyGraph nb;
  nb.AddStep({"raw"}, "dropna", "train_df");
  nb.AddStep({"raw2"}, "dropna", "more_df");
  JuneauFinder with_prov(corpus_);
  with_prov.RegisterProvenance("train", &nb, "train_df");
  with_prov.RegisterProvenance("more_rows", &nb, "more_df");
  JuneauSignals s = with_prov.ComputeSignals(Idx("train"), Idx("more_rows"));
  EXPECT_DOUBLE_EQ(s.provenance, 1.0);
  // Without registration the signal is zero.
  EXPECT_DOUBLE_EQ(
      finder_->ComputeSignals(Idx("train"), Idx("more_rows")).provenance, 0.0);
  // The boost strictly increases the training-augmentation score.
  EXPECT_GT(with_prov.Score(Idx("train"), Idx("more_rows"),
                            JuneauTask::kAugmentTraining),
            finder_->Score(Idx("train"), Idx("more_rows"),
                           JuneauTask::kAugmentTraining));
}

TEST_F(JuneauTest, TaskNames) {
  EXPECT_EQ(JuneauTaskName(JuneauTask::kAugmentTraining), "augment_training");
  EXPECT_EQ(JuneauTaskName(JuneauTask::kCleaning), "cleaning");
}

}  // namespace
}  // namespace lakekit::discovery
