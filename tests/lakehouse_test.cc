#include <gtest/gtest.h>

#include <filesystem>

#include "lakehouse/delta_log.h"
#include "lakehouse/delta_table.h"
#include "query/expr.h"
#include "storage/object_store.h"

#include "common/status.h"

namespace lakekit::lakehouse {
namespace {

namespace fs = std::filesystem;

class LakehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("lakekit_lh_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    fs::remove_all(dir_);
    auto store = storage::ObjectStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<storage::ObjectStore>(std::move(*store));
  }
  void TearDown() override { fs::remove_all(dir_); }

  static table::Schema OrdersSchema() {
    return table::Schema({{"id", table::DataType::kInt64, true},
                          {"item", table::DataType::kString, true},
                          {"qty", table::DataType::kInt64, true}});
  }

  static table::Table OrdersRows(int base, int n) {
    table::Table t("orders", OrdersSchema());
    for (int i = 0; i < n; ++i) {
      LAKEKIT_CHECK_OK(t.AppendRow({table::Value(int64_t{base + i}),
                         table::Value("item" + std::to_string(base + i)),
                         table::Value(int64_t{(base + i) % 7})}));
    }
    return t;
  }

  std::string dir_;
  std::unique_ptr<storage::ObjectStore> store_;
};

// ---------------------------------------------------------------- log

TEST_F(LakehouseTest, EmptyLogHasNoVersion) {
  DeltaLog log(store_.get(), "tables/none");
  auto latest = log.LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, -1);
  EXPECT_FALSE(log.GetSnapshot().ok());
}

TEST_F(LakehouseTest, CommitAndSnapshot) {
  DeltaLog log(store_.get(), "tables/t");
  Commit c0;
  c0.operation = "CREATE";
  c0.metadata = TableMetadata{"t", "a:int64"};
  ASSERT_TRUE(log.TryCommit(c0, -1).ok());
  Commit c1;
  c1.operation = "APPEND";
  c1.adds.push_back(AddFile{"tables/t/part-0.csv", 100});
  auto v1 = log.TryCommit(c1, 0);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  auto snapshot = log.GetSnapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_EQ(snapshot->metadata.schema, "a:int64");
  ASSERT_EQ(snapshot->files.size(), 1u);
}

TEST_F(LakehouseTest, RemoveShadowsAdd) {
  DeltaLog log(store_.get(), "tables/t");
  Commit c0;
  c0.operation = "CREATE";
  c0.metadata = TableMetadata{"t", "a:int64"};
  c0.adds.push_back(AddFile{"p1", 10});
  ASSERT_TRUE(log.TryCommit(c0, -1).ok());
  Commit c1;
  c1.operation = "OVERWRITE";
  c1.removes.push_back(RemoveFile{"p1"});
  c1.adds.push_back(AddFile{"p2", 20});
  ASSERT_TRUE(log.TryCommit(c1, 0).ok());
  auto snapshot = log.GetSnapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->files.size(), 1u);
  EXPECT_EQ(snapshot->files[0].path, "p2");
  // Time travel to version 0 still sees p1.
  auto old = log.GetSnapshot(0);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->files[0].path, "p1");
}

TEST_F(LakehouseTest, AppendRebasePastConcurrentCommit) {
  DeltaLog writer_a(store_.get(), "tables/t");
  DeltaLog writer_b(store_.get(), "tables/t");
  Commit create;
  create.operation = "CREATE";
  create.metadata = TableMetadata{"t", "a:int64"};
  ASSERT_TRUE(writer_a.TryCommit(create, -1).ok());

  // Both writers read version 0, then both append.
  Commit append_a;
  append_a.operation = "APPEND";
  append_a.adds.push_back(AddFile{"pa", 1});
  Commit append_b;
  append_b.operation = "APPEND";
  append_b.adds.push_back(AddFile{"pb", 1});
  auto va = writer_a.TryCommit(append_a, 0);
  auto vb = writer_b.TryCommit(append_b, 0);  // loses race, rebases
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(*va, 1);
  EXPECT_EQ(*vb, 2);
  auto snapshot = writer_a.GetSnapshot();
  EXPECT_EQ(snapshot->files.size(), 2u);
}

TEST_F(LakehouseTest, ConflictingOverwriteAborts) {
  DeltaLog writer_a(store_.get(), "tables/t");
  DeltaLog writer_b(store_.get(), "tables/t");
  Commit create;
  create.operation = "CREATE";
  create.metadata = TableMetadata{"t", "a:int64"};
  create.adds.push_back(AddFile{"p0", 1});
  ASSERT_TRUE(writer_a.TryCommit(create, -1).ok());
  // A appends at version 0; B tries to overwrite based on version 0.
  Commit append;
  append.operation = "APPEND";
  append.adds.push_back(AddFile{"p1", 1});
  ASSERT_TRUE(writer_a.TryCommit(append, 0).ok());
  Commit overwrite;
  overwrite.operation = "OVERWRITE";
  overwrite.removes.push_back(RemoveFile{"p0"});
  overwrite.adds.push_back(AddFile{"p2", 1});
  Status s = writer_b.TryCommit(overwrite, 0).status();
  EXPECT_TRUE(s.IsAborted());
}

TEST_F(LakehouseTest, CheckpointPreservesSnapshots) {
  DeltaLog log(store_.get(), "tables/t");
  Commit create;
  create.operation = "CREATE";
  create.metadata = TableMetadata{"t", "a:int64"};
  ASSERT_TRUE(log.TryCommit(create, -1).ok());
  for (int i = 0; i < 10; ++i) {
    Commit append;
    append.operation = "APPEND";
    append.adds.push_back(AddFile{"p" + std::to_string(i), 1});
    ASSERT_TRUE(log.TryCommit(append, i).ok());
  }
  auto before = log.GetSnapshot();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(log.WriteCheckpoint(before->version).ok());
  auto after = log.GetSnapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->version, before->version);
  EXPECT_EQ(after->files.size(), before->files.size());
  EXPECT_EQ(after->metadata.schema, before->metadata.schema);
  // Commits after the checkpoint still apply.
  Commit append;
  append.operation = "APPEND";
  append.adds.push_back(AddFile{"p_post", 1});
  ASSERT_TRUE(log.TryCommit(append, after->version).ok());
  EXPECT_EQ(log.GetSnapshot()->files.size(), before->files.size() + 1);
}

TEST_F(LakehouseTest, HistoryListsOperations) {
  DeltaLog log(store_.get(), "tables/t");
  Commit create;
  create.operation = "CREATE";
  create.metadata = TableMetadata{"t", "a:int64"};
  ASSERT_TRUE(log.TryCommit(create, -1).ok());
  Commit append;
  append.operation = "APPEND";
  append.adds.push_back(AddFile{"p", 1});
  ASSERT_TRUE(log.TryCommit(append, 0).ok());
  auto history = log.History();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(*history, (std::vector<std::string>{"CREATE", "APPEND"}));
}

// ---------------------------------------------------------------- table

TEST_F(LakehouseTest, CreateAppendRead) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Append(OrdersRows(0, 5)).ok());
  ASSERT_TRUE(t->Append(OrdersRows(5, 5)).ok());
  auto data = t->Read();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 10u);
  EXPECT_EQ(*t->Version(), 2);
}

TEST_F(LakehouseTest, CreateTwiceFails) {
  ASSERT_TRUE(DeltaTable::Create(store_.get(), "t", OrdersSchema()).ok());
  EXPECT_TRUE(DeltaTable::Create(store_.get(), "t", OrdersSchema())
                  .status()
                  .IsAlreadyExists());
}

TEST_F(LakehouseTest, SchemaMismatchRejected) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  auto wrong = table::Table::FromCsv("x", "a,b\n1,2\n");
  EXPECT_TRUE(t->Append(*wrong).IsInvalidArgument());
}

TEST_F(LakehouseTest, TimeTravelReadsOldVersions) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Append(OrdersRows(0, 3)).ok());   // v1
  ASSERT_TRUE(t->Append(OrdersRows(10, 4)).ok());  // v2
  ASSERT_TRUE(t->Overwrite(OrdersRows(100, 2)).ok());  // v3
  EXPECT_EQ(t->Read(1)->num_rows(), 3u);
  EXPECT_EQ(t->Read(2)->num_rows(), 7u);
  EXPECT_EQ(t->Read(3)->num_rows(), 2u);
  EXPECT_EQ(t->Read()->num_rows(), 2u);
  EXPECT_FALSE(t->Read(99).ok());
}

TEST_F(LakehouseTest, DeleteWhereRewritesFiles) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Append(OrdersRows(0, 14)).ok());
  // Delete rows with qty = 0 (ids 0, 7 in 0..13).
  auto pred = query::Expr::Compare(
      query::CmpOp::kEq, query::Expr::Column("qty"),
      query::Expr::Literal(table::Value(int64_t{0})));
  ASSERT_TRUE(t->DeleteWhere(*pred).ok());
  auto data = t->Read();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 12u);
  size_t qty = *data->schema().IndexOf("qty");
  for (size_t r = 0; r < data->num_rows(); ++r) {
    EXPECT_NE(data->at(r, qty).as_int(), 0);
  }
  // Deleted rows remain visible in the pre-delete version.
  EXPECT_EQ(t->Read(1)->num_rows(), 14u);
}

TEST_F(LakehouseTest, DeleteWithNoMatchesIsNoop) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Append(OrdersRows(0, 3)).ok());
  auto pred = query::Expr::Compare(
      query::CmpOp::kEq, query::Expr::Column("qty"),
      query::Expr::Literal(table::Value(int64_t{999})));
  ASSERT_TRUE(t->DeleteWhere(*pred).ok());
  EXPECT_EQ(*t->Version(), 1);  // no commit happened
}

TEST_F(LakehouseTest, OpenExistingTable) {
  {
    auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Append(OrdersRows(0, 4)).ok());
  }
  auto reopened = DeltaTable::Open(store_.get(), "orders");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->schema(), OrdersSchema());
  EXPECT_EQ(reopened->Read()->num_rows(), 4u);
  ASSERT_TRUE(reopened->Append(OrdersRows(4, 2)).ok());
  EXPECT_EQ(reopened->Read()->num_rows(), 6u);
}

TEST_F(LakehouseTest, CheckpointedTableStillTimeTravels) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t->Append(OrdersRows(i * 10, 2)).ok());
  }
  ASSERT_TRUE(t->Checkpoint().ok());
  EXPECT_EQ(t->Read()->num_rows(), 10u);
  EXPECT_EQ(t->Read(2)->num_rows(), 4u);  // pre-checkpoint version
}

TEST_F(LakehouseTest, HistoryAfterMixedOperations) {
  auto t = DeltaTable::Create(store_.get(), "orders", OrdersSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Append(OrdersRows(0, 2)).ok());
  ASSERT_TRUE(t->Overwrite(OrdersRows(5, 1)).ok());
  auto history = t->History();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(*history,
            (std::vector<std::string>{"CREATE", "APPEND", "OVERWRITE"}));
}

TEST(SchemaSignatureTest, RoundTrip) {
  table::Schema s({{"a", table::DataType::kInt64, true},
                   {"b", table::DataType::kString, true}});
  auto parsed = SchemaFromSignature(s.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, s);
  EXPECT_FALSE(SchemaFromSignature("garbage-without-colon").ok());
}

}  // namespace
}  // namespace lakekit::lakehouse
