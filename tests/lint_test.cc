// Unit tests for the repo lint rules (tools/lint/lint.{h,cc}). Each rule is
// driven through LintText with in-memory sources; the embedded snippets are
// raw string literals, so the lint run over THIS file (the lakekit_lint
// ctest) must blank them correctly — a live test of the stripper.

#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lakekit::lint {
namespace {

std::vector<Finding> RuleFindings(const std::vector<Finding>& findings,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// --- StripCommentsAndStrings -----------------------------------------------

TEST(StripTest, BlanksLineAndBlockComments) {
  const std::string stripped =
      StripCommentsAndStrings("int a; // if (!s.ok()) return s;\n"
                              "/* using namespace std; */ int b;\n");
  EXPECT_EQ(stripped.find("ok()"), std::string::npos);
  EXPECT_EQ(stripped.find("namespace"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, BlanksPlainStringsAndCharLiterals) {
  const std::string stripped = StripCommentsAndStrings(
      "auto s = \"if (!x.ok()) return x;\"; char c = ';'; int d = 1;");
  EXPECT_EQ(stripped.find("ok()"), std::string::npos);
  EXPECT_NE(stripped.find("int d = 1;"), std::string::npos);
}

TEST(StripTest, BlanksRawStringWithEmptyDelimiter) {
  const std::string stripped =
      StripCommentsAndStrings("auto s = R\"(if (!x.ok()) return x;)\";\n"
                              "int after = 2;\n");
  EXPECT_EQ(stripped.find("ok()"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 2;"), std::string::npos);
}

TEST(StripTest, BlanksRawStringWithCustomDelimiter) {
  // The payload contains `)"` — only delimiter-aware scanning survives it.
  const std::string stripped = StripCommentsAndStrings(
      "auto s = R\"lk(body with )\" inside; if (!x.ok()) return x;)lk\";\n"
      "int after = 3;\n");
  EXPECT_EQ(stripped.find("ok()"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 3;"), std::string::npos);
}

TEST(StripTest, BlanksEncodingPrefixedRawStrings) {
  for (const std::string prefix : {"u8R", "uR", "UR", "LR"}) {
    const std::string src =
        "auto s = " + prefix + "\"x(if (!v.ok()) return v;)x\"; int k = 4;";
    const std::string stripped = StripCommentsAndStrings(src);
    EXPECT_EQ(stripped.find("ok()"), std::string::npos) << prefix;
    EXPECT_NE(stripped.find("int k = 4;"), std::string::npos) << prefix;
  }
}

TEST(StripTest, IdentifierEndingInRIsNotARawStringIntro) {
  const std::string stripped =
      StripCommentsAndStrings("auto x = myVarR\"(tail)\"; int keep = 5;");
  // `myVarR` ends in R but the R belongs to the identifier; the quote opens
  // an ordinary string instead. The code after must survive.
  EXPECT_NE(stripped.find("int keep = 5;"), std::string::npos);
  EXPECT_NE(stripped.find("myVarR"), std::string::npos);
}

TEST(StripTest, DigitSeparatorIsNotACharLiteral) {
  // The old stripper treated 1'000'000's apostrophes as char literals and
  // swallowed the rest of the statement.
  const std::string stripped = StripCommentsAndStrings(
      "int big = 1'000'000; if (!s.ok()) return s;");
  EXPECT_NE(stripped.find("1'000'000"), std::string::npos);
  EXPECT_NE(stripped.find("ok()"), std::string::npos);
}

TEST(StripTest, PreservesNewlinesForLineNumbers) {
  const std::string src = "line1\n\"str\nstr\"\nline3\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
}

// --- guard -------------------------------------------------------------------

TEST(GuardTest, AcceptsCanonicalGuard) {
  const std::string header =
      "#ifndef LAKEKIT_COMMON_FOO_H_\n"
      "#define LAKEKIT_COMMON_FOO_H_\n"
      "#endif  // LAKEKIT_COMMON_FOO_H_\n";
  EXPECT_TRUE(
      RuleFindings(LintText("src/common/foo.h", header), "guard").empty());
}

TEST(GuardTest, RejectsWrongGuardName) {
  const std::string header =
      "#ifndef FOO_H\n#define FOO_H\n#endif\n";
  const auto findings =
      RuleFindings(LintText("src/common/foo.h", header), "guard");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("LAKEKIT_COMMON_FOO_H_"),
            std::string::npos);
}

TEST(GuardTest, RejectsMissingDefineAfterIfndef) {
  const std::string header =
      "#ifndef LAKEKIT_COMMON_FOO_H_\nint x;\n#endif\n";
  EXPECT_EQ(
      RuleFindings(LintText("src/common/foo.h", header), "guard").size(), 1u);
}

TEST(GuardTest, OnlyAppliesUnderSrc) {
  EXPECT_TRUE(
      RuleFindings(LintText("tests/foo.h", "int x;\n"), "guard").empty());
}

// --- using-ns ----------------------------------------------------------------

TEST(UsingNamespaceTest, FlagsHeadersOnly) {
  const std::string code = "using namespace std;\n";
  EXPECT_EQ(RuleFindings(LintText("src/common/foo.h",
                                  "#ifndef LAKEKIT_COMMON_FOO_H_\n"
                                  "#define LAKEKIT_COMMON_FOO_H_\n" +
                                      code + "#endif\n"),
                         "using-ns")
                .size(),
            1u);
  EXPECT_TRUE(RuleFindings(LintText("src/common/foo.cc", code), "using-ns")
                  .empty());
}

// --- manual-chain ------------------------------------------------------------

TEST(ManualChainTest, FlagsHandRolledStatusChain) {
  const auto findings = RuleFindings(
      LintText("src/a.cc", "Status F() { if (!s.ok()) return s; }\n"),
      "manual-chain");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(ManualChainTest, FlagsResultStatusForm) {
  EXPECT_EQ(RuleFindings(LintText("src/a.cc",
                                  "if (!r.ok()) return r.status();\n"),
                         "manual-chain")
                .size(),
            1u);
}

TEST(ManualChainTest, IgnoresDifferentIdentifiers) {
  EXPECT_TRUE(RuleFindings(LintText("src/a.cc",
                                    "if (!a.ok()) return b;\n"),
                           "manual-chain")
                  .empty());
}

// --- void-discard ------------------------------------------------------------

TEST(VoidDiscardTest, FlagsUnjustifiedDiscard) {
  EXPECT_EQ(
      RuleFindings(LintText("src/a.cc", "(void)DoThing();\n"), "void-discard")
          .size(),
      1u);
}

TEST(VoidDiscardTest, AcceptsSameLineJustification) {
  EXPECT_TRUE(RuleFindings(LintText("src/a.cc",
                                    "// ignore: best effort\n"
                                    "(void)DoThing();  // ignore: best effort\n"),
                           "void-discard")
                  .empty());
}

TEST(VoidDiscardTest, AcceptsCommentBlockAbove) {
  EXPECT_TRUE(RuleFindings(LintText("src/a.cc",
                                    "// ignore: shutdown path, nothing to do\n"
                                    "(void)DoThing();\n"),
                           "void-discard")
                  .empty());
}

TEST(VoidDiscardTest, BareVariableCastIsExempt) {
  EXPECT_TRUE(RuleFindings(LintText("src/a.cc", "(void)unused_arg;\n"),
                           "void-discard")
                  .empty());
}

// --- mutex-annotated ---------------------------------------------------------

TEST(MutexAnnotatedTest, FlagsRawStdMutexMember) {
  const std::string code = R"(
    class Cache {
     private:
      std::mutex mu_;
      int hits_ = 0;
    };
  )";
  const auto findings =
      RuleFindings(LintText("src/common/cache.cc", code), "mutex-annotated");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("std::mutex"), std::string::npos);
}

TEST(MutexAnnotatedTest, FlagsUnguardedSiblingOfCapability) {
  const std::string code = R"(
    class Cache {
     private:
      lakekit::Mutex mu_;
      int hits_ = 0;
    };
  )";
  const auto findings =
      RuleFindings(LintText("src/common/cache.cc", code), "mutex-annotated");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("hits_"), std::string::npos);
}

TEST(MutexAnnotatedTest, AcceptsGuardedAndJustifiedMembers) {
  const std::string code = R"(
    class Cache {
     private:
      lakekit::Mutex mu_;
      int hits_ LAKEKIT_GUARDED_BY(mu_) = 0;
      // unguarded: written once in the constructor, read-only after.
      std::string name_;
      std::atomic<int> epoch_{0};
      CondVar cv_;
    };
  )";
  EXPECT_TRUE(RuleFindings(LintText("src/common/cache.cc", code),
                           "mutex-annotated")
                  .empty());
}

TEST(MutexAnnotatedTest, CapabilityClassesAreExempt) {
  // The annotated primitives themselves wrap a raw std::mutex; the compiler
  // checks them, the lint must not.
  const std::string code = R"(
    class LAKEKIT_CAPABILITY("mutex") Mutex {
     private:
      std::mutex mu_;
    };
    class LAKEKIT_SCOPED_CAPABILITY MutexLock {
     private:
      Mutex& mu_;
      bool held_;
    };
  )";
  EXPECT_TRUE(RuleFindings(LintText("src/common/mutex.h",
                                    "#ifndef LAKEKIT_COMMON_MUTEX_H_\n"
                                    "#define LAKEKIT_COMMON_MUTEX_H_\n" +
                                        code + "\n#endif\n"),
                           "mutex-annotated")
                  .empty());
}

TEST(MutexAnnotatedTest, ClassWithoutCapabilityIsNotChecked) {
  const std::string code = R"(
    struct Point {
      int x = 0;
      int y = 0;
    };
  )";
  EXPECT_TRUE(RuleFindings(LintText("src/common/point.h",
                                    "#ifndef LAKEKIT_COMMON_POINT_H_\n"
                                    "#define LAKEKIT_COMMON_POINT_H_\n" +
                                        code + "\n#endif\n"),
                           "mutex-annotated")
                  .empty());
}

TEST(MutexAnnotatedTest, MethodsAndStaticsAreNotMembers) {
  const std::string code = R"(
    class Pool {
     public:
      void Submit(std::function<void()> fn);
      static constexpr int kDefaultThreads = 4;
     private:
      void DrainLocked() LAKEKIT_REQUIRES(mu_);
      lakekit::Mutex mu_;
      std::deque<std::function<void()>> queue_ LAKEKIT_GUARDED_BY(mu_);
    };
  )";
  EXPECT_TRUE(RuleFindings(LintText("src/common/pool.cc", code),
                           "mutex-annotated")
                  .empty());
}

TEST(MutexAnnotatedTest, DefaultArgumentBracesDoNotSplitDeclarations) {
  // `Options o = {}` mid-signature once split the declaration, making the
  // tail after the braces look like an unguarded data member named `fs`.
  const std::string code = R"(
    class Store {
     public:
      static int Open(const std::string& dir,
                      Options options = {},
                      Fs* fs = Default());
     private:
      lakekit::Mutex mu_;
      int entries_ LAKEKIT_GUARDED_BY(mu_) = 0;
    };
  )";
  EXPECT_TRUE(RuleFindings(LintText("src/storage/store.cc", code),
                           "mutex-annotated")
                  .empty());
}

TEST(MutexAnnotatedTest, OnlyAppliesUnderSrc) {
  const std::string code = "class T { std::mutex mu_; };\n";
  EXPECT_FALSE(
      RuleFindings(LintText("src/t.cc", code), "mutex-annotated").empty());
  EXPECT_TRUE(
      RuleFindings(LintText("tests/t.cc", code), "mutex-annotated").empty());
}

TEST(MutexAnnotatedTest, WriterPriorityRwLockCountsAsCapability) {
  const std::string code = R"(
    class Store {
     private:
      mutable WriterPriorityRwLock state_mu_;
      int entries_;
    };
  )";
  const auto findings =
      RuleFindings(LintText("src/storage/store.cc", code), "mutex-annotated");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("entries_"), std::string::npos);
}

}  // namespace
}  // namespace lakekit::lint
