// Tests for the sharded, memory-bounded LRU cache (common/lru_cache.h):
// recency order, charge-based eviction, pinning, insert-if-absent
// convergence, and budget re-convergence under concurrent pin churn.

#include "common/lru_cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lakekit {
namespace {

using Cache = LruCache<std::string, int>;

TEST(LruCacheTest, LookupMissThenHit) {
  Cache cache(1024, /*shards=*/1);
  EXPECT_FALSE(cache.Lookup("a"));
  {
    Cache::Handle h = cache.Insert("a", 7, 10);
    ASSERT_TRUE(h);
    EXPECT_EQ(*h, 7);
  }
  Cache::Handle h = cache.Lookup("a");
  ASSERT_TRUE(h);
  EXPECT_EQ(*h, 7);
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charge, 10u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWhenOverBudget) {
  // Budget fits two 10-byte entries; one shard so the budget is undivided.
  Cache cache(20, /*shards=*/1);
  cache.Insert("a", 1, 10);
  cache.Insert("b", 2, 10);
  // Touch "a" so "b" becomes the eviction candidate.
  EXPECT_TRUE(cache.Lookup("a"));
  cache.Insert("c", 3, 10);
  EXPECT_TRUE(cache.Lookup("a"));
  EXPECT_FALSE(cache.Lookup("b"));
  EXPECT_TRUE(cache.Lookup("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.charge(), 20u);
}

TEST(LruCacheTest, PinnedEntrySurvivesEvictionPressure) {
  Cache cache(10, /*shards=*/1);
  Cache::Handle pinned = cache.Insert("a", 1, 10);
  // "b" pushes the shard over budget; "a" is pinned, so it must survive
  // even though it is the LRU entry. The budget is a soft cap until the
  // pin drops.
  Cache::Handle b = cache.Insert("b", 2, 10);
  b.Release();
  EXPECT_TRUE(cache.Lookup("a"));
  ASSERT_TRUE(pinned);
  EXPECT_EQ(*pinned, 1);
  // Releasing the pin re-runs eviction and the cache re-converges.
  pinned.Release();
  // One more touch-free insert to force the walk.
  cache.Insert("c", 3, 10).Release();
  EXPECT_LE(cache.charge(), 10u);
}

TEST(LruCacheTest, InsertIfAbsentConvergesOnFirstValue) {
  Cache cache(1024, /*shards=*/1);
  Cache::Handle first = cache.Insert("k", 1, 10);
  // A racing loader's insert under the same key must not replace the value
  // the first handle still reads.
  Cache::Handle second = cache.Insert("k", 2, 10);
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().charge, 10u);
}

TEST(LruCacheTest, HandleCopyRepinsAndMoveTransfers) {
  Cache cache(10, /*shards=*/1);
  Cache::Handle a = cache.Insert("a", 1, 10);
  Cache::Handle copy = a;
  a.Release();
  // The copy still pins: eviction pressure must not destroy the entry.
  cache.Insert("b", 2, 10).Release();
  EXPECT_EQ(*copy, 1);
  Cache::Handle moved = std::move(copy);
  EXPECT_FALSE(copy);  // NOLINT(bugprone-use-after-move): post-move empty
  EXPECT_EQ(*moved, 1);
}

TEST(LruCacheTest, ShardCountIsPowerOfTwo) {
  Cache cache(1024, /*shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  Cache def(1024);
  EXPECT_EQ(def.num_shards() & (def.num_shards() - 1), 0u);
}

// Concurrent hammer: hits, misses, inserts, pin/release churn across
// threads. Run under TSan in CI. After the threads quiesce (all pins
// dropped), the cache must hold its byte budget again.
TEST(LruCacheTest, ConcurrentChurnHoldsBudgetAfterQuiesce) {
  constexpr size_t kBudget = 64;
  constexpr size_t kCharge = 8;
  Cache cache(kBudget, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> live_value_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key_num = (t * 7 + i) % 32;
        const std::string key = "k" + std::to_string(key_num);
        Cache::Handle h = cache.Lookup(key);
        if (!h) h = cache.Insert(key, key_num, kCharge);
        // The pinned value must always be the one inserted for this key:
        // eviction-under-pin or replace-under-pin would break this.
        if (*h != key_num) live_value_errors.fetch_add(1);
        if (i % 3 == 0) {
          Cache::Handle copy = h;  // re-pin path
          if (*copy != key_num) live_value_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(live_value_errors.load(), 0u);
  const LruCacheStats stats = cache.stats();
  // All pins are dropped: the budget is a hard cap again.
  EXPECT_LE(stats.charge, kBudget);
  // Every op did exactly one Lookup (Insert does not count hits/misses).
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace lakekit
