// Tests for hierarchical memory accounting (common/memory_budget.h):
// root reserve/release semantics, the never-over-capacity CAS invariant
// under concurrent reservers, child-account caps and settlement, and
// MemoryCharge's quantum batching.

#include "common/memory_budget.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lakekit {
namespace {

TEST(MemoryBudgetTest, ReserveReleaseRoundTrip) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.capacity(), 1000u);
  EXPECT_EQ(budget.used(), 0u);
  LAKEKIT_CHECK_OK(budget.TryReserve(400));
  EXPECT_EQ(budget.used(), 400u);
  LAKEKIT_CHECK_OK(budget.TryReserve(600));
  EXPECT_EQ(budget.used(), 1000u);
  budget.Release(1000);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak_used(), 1000u);
  EXPECT_EQ(budget.exhausted_count(), 0u);
}

TEST(MemoryBudgetTest, RefusesPastCapacityWithoutSideEffects) {
  MemoryBudget budget(100);
  LAKEKIT_CHECK_OK(budget.TryReserve(60));
  const Status s = budget.TryReserve(41);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // A refusal holds nothing: accounting is exactly as before the call.
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_EQ(budget.exhausted_count(), 1u);
  // The freed headroom is immediately reservable again.
  LAKEKIT_CHECK_OK(budget.TryReserve(40));
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudgetTest, OversizedSingleRequestRefused) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryReserve(101).IsResourceExhausted());
  // size_t-overflow bait: capacity - bytes must not wrap.
  EXPECT_TRUE(
      budget.TryReserve(static_cast<size_t>(-1)).IsResourceExhausted());
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, ZeroByteReserveAlwaysSucceeds) {
  MemoryBudget budget(0);
  LAKEKIT_CHECK_OK(budget.TryReserve(0));
  EXPECT_TRUE(budget.TryReserve(1).IsResourceExhausted());
}

TEST(MemoryBudgetTest, ReleaseSaturatesAtZero) {
  MemoryBudget budget(100);
  LAKEKIT_CHECK_OK(budget.TryReserve(10));
  budget.Release(50);  // over-release is a bug, but must not wrap
  EXPECT_EQ(budget.used(), 0u);
  LAKEKIT_CHECK_OK(budget.TryReserve(100));
}

// The core overload invariant: however many threads hammer TryReserve,
// accounted bytes never exceed capacity — checked via peak_used() after a
// storm of reserve/release cycles that would trivially break a
// check-then-add implementation.
TEST(MemoryBudgetTest, ConcurrentReserversNeverExceedCapacity) {
  constexpr size_t kCapacity = 1 << 20;
  constexpr size_t kChunk = 200 * 1024;  // 5 fit, 6 do not
  MemoryBudget budget(kCapacity);
  std::atomic<uint64_t> granted{0};
  std::atomic<uint64_t> refused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (budget.TryReserve(kChunk).ok()) {
          granted.fetch_add(1);
          budget.Release(kChunk);
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_LE(budget.peak_used(), kCapacity);
  EXPECT_GT(granted.load(), 0u);
  EXPECT_EQ(budget.exhausted_count(), refused.load());
}

TEST(BudgetAccountTest, DetachedAccountIsUnlimited) {
  BudgetAccount account;
  EXPECT_FALSE(account.attached());
  LAKEKIT_CHECK_OK(account.TryReserve(static_cast<size_t>(-1)));
  account.Release(123);  // no-op, no crash
}

TEST(BudgetAccountTest, ChildForwardsToParentAndSettlesOnDestruction) {
  MemoryBudget budget(1000);
  {
    BudgetAccount account(&budget);
    EXPECT_TRUE(account.attached());
    EXPECT_EQ(account.cap(), 1000u);  // 0 => parent capacity
    LAKEKIT_CHECK_OK(account.TryReserve(700));
    EXPECT_EQ(account.used(), 700u);
    EXPECT_EQ(budget.used(), 700u);
    account.Release(200);
    EXPECT_EQ(budget.used(), 500u);
    // 500 still held here: the destructor must return it.
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetAccountTest, OwnCapRefusesBeforeParent) {
  MemoryBudget budget(1000);
  BudgetAccount account(&budget, /*cap_bytes=*/100);
  LAKEKIT_CHECK_OK(account.TryReserve(100));
  const Status s = account.TryReserve(1);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // The local refusal never reached the parent, and held nothing locally.
  EXPECT_EQ(account.used(), 100u);
  EXPECT_EQ(budget.used(), 100u);
}

TEST(BudgetAccountTest, ParentRefusalRollsBackLocalReservation) {
  MemoryBudget budget(100);
  BudgetAccount greedy(&budget, /*cap_bytes=*/1000);
  LAKEKIT_CHECK_OK(greedy.TryReserve(80));
  // Fits greedy's own cap but not the parent: both levels must end
  // unchanged.
  EXPECT_TRUE(greedy.TryReserve(30).IsResourceExhausted());
  EXPECT_EQ(greedy.used(), 80u);
  EXPECT_EQ(budget.used(), 80u);
}

TEST(BudgetAccountTest, SiblingsContendForOneParent) {
  MemoryBudget budget(100);
  BudgetAccount a(&budget);
  BudgetAccount b(&budget);
  LAKEKIT_CHECK_OK(a.TryReserve(70));
  EXPECT_TRUE(b.TryReserve(40).IsResourceExhausted());
  LAKEKIT_CHECK_OK(b.TryReserve(30));
  a.Release(70);
  LAKEKIT_CHECK_OK(b.TryReserve(40));
  EXPECT_EQ(budget.used(), 70u);
}

TEST(MemoryChargeTest, BatchesThroughQuanta) {
  MemoryBudget budget(10 * kBudgetQuantumBytes);
  BudgetAccount account(&budget);
  {
    MemoryCharge charge(&account);
    // Many small debits; the account only sees whole quanta.
    for (int i = 0; i < 100; ++i) LAKEKIT_CHECK_OK(charge.Add(100));
    EXPECT_EQ(charge.held(), 10000u);
    EXPECT_EQ(account.used(), kBudgetQuantumBytes);
    // A debit bigger than a quantum grabs enough whole quanta at once.
    LAKEKIT_CHECK_OK(charge.Add(3 * kBudgetQuantumBytes));
    EXPECT_EQ(account.used(), 4 * kBudgetQuantumBytes);
  }
  // Destruction returns the full quantum-rounded reservation.
  EXPECT_EQ(account.used(), 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryChargeTest, RefusalLeavesLocalAccountingUnchanged) {
  MemoryBudget budget(kBudgetQuantumBytes);
  BudgetAccount account(&budget);
  MemoryCharge charge(&account);
  LAKEKIT_CHECK_OK(charge.Add(kBudgetQuantumBytes));
  const size_t held = charge.held();
  EXPECT_TRUE(charge.Add(1).IsResourceExhausted());
  EXPECT_EQ(charge.held(), held);
  // After an upstream release the same Add succeeds.
  charge.ReleaseAll();
  LAKEKIT_CHECK_OK(charge.Add(1));
}

TEST(MemoryChargeTest, NullAndDetachedAccountsAreFree) {
  MemoryCharge null_charge(nullptr);
  LAKEKIT_CHECK_OK(null_charge.Add(static_cast<size_t>(-1)));
  BudgetAccount detached;
  MemoryCharge detached_charge(&detached);
  LAKEKIT_CHECK_OK(detached_charge.Add(static_cast<size_t>(-1)));
}

}  // namespace
}  // namespace lakekit
