#include <gtest/gtest.h>

#include "ingest/structural_extractor.h"
#include "json/parser.h"
#include "metamodel/data_vault.h"
#include "metamodel/ekg.h"
#include "metamodel/gemms.h"
#include "metamodel/handle.h"
#include "table/table.h"

namespace lakekit::metamodel {
namespace {

MetadataUnit MakeUnit(const std::string& name) {
  MetadataUnit unit;
  unit.dataset = name;
  unit.properties["format"] = "json";
  auto doc = json::Parse(R"({"id": 1, "addr": {"city": "delft"}})");
  unit.structure = ingest::StructuralExtractor::InferJson(*doc);
  return unit;
}

// ---------------------------------------------------------------- GEMMS

TEST(GemmsModelTest, AddAndGetUnit) {
  GemmsModel model;
  ASSERT_TRUE(model.AddUnit(MakeUnit("people")).ok());
  EXPECT_TRUE(model.AddUnit(MakeUnit("people")).IsAlreadyExists());
  auto unit = model.GetUnit("people");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ((*unit)->properties.at("format"), "json");
  EXPECT_TRUE(model.GetUnit("ghost").status().IsNotFound());
  EXPECT_EQ(model.num_units(), 1u);
}

TEST(GemmsModelTest, ResolvePath) {
  MetadataUnit unit = MakeUnit("x");
  const auto* city = GemmsModel::ResolvePath(unit.structure, "root/addr/city");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->type, "string");
  EXPECT_EQ(GemmsModel::ResolvePath(unit.structure, "root/missing"), nullptr);
  EXPECT_EQ(GemmsModel::ResolvePath(unit.structure, "wrong/addr"), nullptr);
}

TEST(GemmsModelTest, AnnotateValidatesPath) {
  GemmsModel model;
  ASSERT_TRUE(model.AddUnit(MakeUnit("people")).ok());
  EXPECT_TRUE(
      model.Annotate("people", "root/addr/city", "schema.org/City").ok());
  EXPECT_TRUE(
      model.Annotate("people", "root/nope", "schema.org/Thing").IsNotFound());
  EXPECT_EQ(model.FindByOntologyTerm("schema.org/City"),
            (std::vector<std::string>{"people"}));
  EXPECT_TRUE(model.FindByOntologyTerm("schema.org/Nothing").empty());
}

TEST(GemmsModelTest, PropertyQueries) {
  GemmsModel model;
  ASSERT_TRUE(model.AddUnit(MakeUnit("a")).ok());
  ASSERT_TRUE(model.AddUnit(MakeUnit("b")).ok());
  ASSERT_TRUE(model.SetProperty("b", "format", "csv").ok());
  EXPECT_EQ(model.FindByProperty("format", "json"),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(model.FindByProperty("format", "csv"),
            (std::vector<std::string>{"b"}));
  EXPECT_TRUE(model.SetProperty("ghost", "k", "v").IsNotFound());
}

TEST(GemmsModelTest, UnitToJson) {
  MetadataUnit unit = MakeUnit("x");
  unit.annotations.push_back({"root/id", "schema.org/identifier"});
  json::Value v = unit.ToJson();
  EXPECT_EQ(v.GetString("dataset"), "x");
  EXPECT_TRUE(v.Get("annotations")->is_array());
}

// ---------------------------------------------------------------- HANDLE

TEST(HandleModelTest, ZonesAndMovement) {
  HandleModel model;
  auto raw = model.AddData("sensor_dump", "raw");
  EXPECT_EQ(*model.ZoneOf(raw), "raw");
  ASSERT_TRUE(model.MoveToZone(raw, "curated").ok());
  EXPECT_EQ(*model.ZoneOf(raw), "curated");
  EXPECT_EQ(model.DataInZone("curated").size(), 1u);
  EXPECT_TRUE(model.DataInZone("raw").empty());
}

TEST(HandleModelTest, MetadataAttachment) {
  HandleModel model;
  auto data = model.AddData("d", "raw");
  auto meta = model.AttachMetadata(data, "quality", json::Value("checked"));
  ASSERT_TRUE(meta.ok());
  auto all = model.MetadataOf(data);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "quality");
  EXPECT_EQ(all[0].second.as_string(), "checked");
  // Metadata on metadata (finer granularity).
  auto meta2 = model.AttachMetadata(*meta, "audit", json::Value("ok"));
  ASSERT_TRUE(meta2.ok());
  EXPECT_EQ(model.MetadataOf(*meta).size(), 1u);
  // Category filter.
  ASSERT_TRUE(model.AttachMetadata(data, "owner", json::Value("ada")).ok());
  EXPECT_EQ(model.MetadataOf(data, std::string("owner")).size(), 1u);
  EXPECT_EQ(model.MetadataOf(data).size(), 2u);
}

TEST(HandleModelTest, AttachToMissingItemFails) {
  HandleModel model;
  EXPECT_FALSE(model.AttachMetadata(999, "c", json::Value(1)).ok());
}

TEST(HandleModelTest, MoveNonDataItemFails) {
  HandleModel model;
  auto data = model.AddData("d", "raw");
  auto meta = model.AttachMetadata(data, "c", json::Value(1));
  EXPECT_TRUE(model.MoveToZone(*meta, "curated").IsInvalidArgument());
}

TEST(HandleModelTest, FindDataByName) {
  HandleModel model;
  auto id = model.AddData("needle", "raw");
  EXPECT_EQ(*model.FindData("needle"), id);
  EXPECT_FALSE(model.FindData("haystack").has_value());
}

TEST(HandleModelTest, GemmsUnitMapsOntoHandle) {
  HandleModel model;
  MetadataUnit unit = MakeUnit("people");
  unit.annotations.push_back({"root/id", "schema.org/identifier"});
  auto id = model.ImportGemmsUnit(unit, "raw");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*model.ZoneOf(*id), "raw");
  EXPECT_EQ(model.MetadataOf(*id, std::string("property")).size(), 1u);
  EXPECT_EQ(model.MetadataOf(*id, std::string("structure")).size(), 1u);
  EXPECT_EQ(model.MetadataOf(*id, std::string("semantic")).size(), 1u);
}

// ---------------------------------------------------------------- EKG

TEST(EkgTest, NodesAreDedupedByName) {
  Ekg ekg;
  auto a = ekg.AddNode("orders", "id");
  auto a2 = ekg.AddNode("orders", "id");
  EXPECT_EQ(a, a2);
  EXPECT_EQ(ekg.num_nodes(), 1u);
  EXPECT_EQ(*ekg.FindNode("orders", "id"), a);
  EXPECT_FALSE(ekg.FindNode("orders", "nope").has_value());
  EXPECT_EQ(ekg.GetNode(a)->FullName(), "orders.id");
}

TEST(EkgTest, EdgesWithWeightsAndUpdate) {
  Ekg ekg;
  auto a = ekg.AddNode("t1", "c1");
  auto b = ekg.AddNode("t2", "c2");
  ASSERT_TRUE(ekg.AddEdge(a, b, Relation::kContentSimilar, 0.8).ok());
  ASSERT_TRUE(ekg.AddEdge(b, a, Relation::kContentSimilar, 0.9).ok());
  // Undirected: the same edge was updated, not duplicated.
  EXPECT_EQ(ekg.num_edges(), 1u);
  auto neighbors = ekg.Neighbors(a, Relation::kContentSimilar);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_DOUBLE_EQ(neighbors[0].second, 0.9);
}

TEST(EkgTest, SelfEdgeRejected) {
  Ekg ekg;
  auto a = ekg.AddNode("t", "c");
  EXPECT_FALSE(ekg.AddEdge(a, a, Relation::kPkFk, 1.0).ok());
}

TEST(EkgTest, NeighborsFilteredByRelationAndWeight) {
  Ekg ekg;
  auto a = ekg.AddNode("t", "a");
  auto b = ekg.AddNode("t", "b");
  auto c = ekg.AddNode("t", "c");
  ASSERT_TRUE(ekg.AddEdge(a, b, Relation::kContentSimilar, 0.9).ok());
  ASSERT_TRUE(ekg.AddEdge(a, c, Relation::kContentSimilar, 0.2).ok());
  ASSERT_TRUE(ekg.AddEdge(a, c, Relation::kPkFk, 1.0).ok());
  EXPECT_EQ(ekg.Neighbors(a, Relation::kContentSimilar).size(), 2u);
  EXPECT_EQ(ekg.Neighbors(a, Relation::kContentSimilar, 0.5).size(), 1u);
  EXPECT_EQ(ekg.Neighbors(a, Relation::kPkFk).size(), 1u);
  // Sorted by weight descending.
  auto sorted = ekg.Neighbors(a, Relation::kContentSimilar);
  EXPECT_DOUBLE_EQ(sorted[0].second, 0.9);
}

TEST(EkgTest, PathQueries) {
  Ekg ekg;
  auto a = ekg.AddNode("t1", "x");
  auto b = ekg.AddNode("t2", "x");
  auto c = ekg.AddNode("t3", "x");
  auto d = ekg.AddNode("t4", "x");
  ASSERT_TRUE(ekg.AddEdge(a, b, Relation::kContentSimilar, 0.9).ok());
  ASSERT_TRUE(ekg.AddEdge(b, c, Relation::kContentSimilar, 0.9).ok());
  auto path = ekg.FindPath(a, c, Relation::kContentSimilar);
  EXPECT_EQ(path, (std::vector<Ekg::NodeId>{a, b, c}));
  EXPECT_TRUE(ekg.FindPath(a, d, Relation::kContentSimilar).empty());
  // Hop limit.
  EXPECT_TRUE(ekg.FindPath(a, c, Relation::kContentSimilar, 1).empty());
  EXPECT_EQ(ekg.FindPath(a, a, Relation::kContentSimilar).size(), 1u);
}

TEST(EkgTest, HyperedgesGroupTableColumns) {
  Ekg ekg;
  auto a = ekg.AddNode("orders", "id");
  auto b = ekg.AddNode("orders", "total");
  auto c = ekg.AddNode("users", "id");
  ekg.AddHyperedge("table:orders", {a, b});
  ekg.AddHyperedge("table:users", {c});
  EXPECT_EQ(ekg.HyperedgeNodes("table:orders"),
            (std::vector<Ekg::NodeId>{a, b}));
  EXPECT_EQ(ekg.HyperedgesOf(a).size(), 1u);
  EXPECT_TRUE(ekg.HyperedgeNodes("table:ghost").empty());
  EXPECT_EQ(ekg.num_hyperedges(), 2u);
}

// ---------------------------------------------------------------- vault

TEST(DataVaultTest, DeriveFromKeyedTables) {
  auto orders = table::Table::FromCsv(
      "orders", "order_id,user_id,total\n1,10,9.5\n2,11,3.0\n3,10,7.5\n");
  auto users =
      table::Table::FromCsv("users", "user_id,name\n10,ada\n11,bob\n");
  std::vector<TableRelation> relations{
      {"orders", "user_id", "users", "user_id"}};
  auto model = DeriveDataVault({*orders, *users}, relations);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->hubs.size(), 2u);
  EXPECT_NE(model->FindHub("hub_orders"), nullptr);
  EXPECT_EQ(model->FindHub("hub_orders")->business_key, "order_id");
  EXPECT_EQ(model->FindHub("hub_users")->business_key, "user_id");
  ASSERT_EQ(model->links.size(), 1u);
  EXPECT_EQ(model->links[0].hub_names,
            (std::vector<std::string>{"hub_orders", "hub_users"}));
  auto sats = model->SatellitesOf("hub_orders");
  ASSERT_EQ(sats.size(), 1u);
  EXPECT_EQ(sats[0]->attributes,
            (std::vector<std::string>{"user_id", "total"}));
}

TEST(DataVaultTest, KeylessTablesDoNotFormHubs) {
  auto logs = table::Table::FromCsv("logs", "level,msg\nINFO,a\nINFO,a\n");
  auto model = DeriveDataVault({*logs}, {});
  EXPECT_FALSE(model.ok());  // no hub derivable at all
}

TEST(DataVaultTest, RelationToKeylessTableSkipped) {
  auto users = table::Table::FromCsv("users", "id,name\n1,ada\n");
  auto logs = table::Table::FromCsv("logs", "level,msg\nINFO,a\nINFO,a\n");
  std::vector<TableRelation> relations{{"logs", "level", "users", "id"}};
  auto model = DeriveDataVault({*users, *logs}, relations);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->hubs.size(), 1u);
  EXPECT_TRUE(model->links.empty());
}

TEST(DataVaultTest, ToStringMentionsAllElements) {
  auto users = table::Table::FromCsv("users", "id,name\n1,ada\n");
  auto model = DeriveDataVault({*users}, {});
  ASSERT_TRUE(model.ok());
  std::string s = model->ToString();
  EXPECT_NE(s.find("hub_users"), std::string::npos);
  EXPECT_NE(s.find("sat_users"), std::string::npos);
}

}  // namespace
}  // namespace lakekit::metamodel
