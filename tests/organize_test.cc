#include <gtest/gtest.h>

#include <set>

#include "discovery/corpus.h"
#include "organize/dsknn.h"
#include "organize/kayak.h"
#include "organize/org_dag.h"
#include "workload/generator.h"

namespace lakekit::organize {
namespace {

// ---------------------------------------------------------------- DS-kNN

TEST(DsKnnTest, FeatureExtraction) {
  auto t = table::Table::FromCsv("t", "id,name,score\n1,a,2.5\n2,b,\n3,c,4.5\n");
  DatasetFeatures f = DsKnnOrganizer::ExtractFeatures(*t);
  EXPECT_EQ(f.dataset_name, "t");
  EXPECT_DOUBLE_EQ(f.num_columns, 3);
  EXPECT_DOUBLE_EQ(f.num_rows, 3);
  EXPECT_NEAR(f.numeric_column_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(f.schema_signature, "id|name|score");
}

TEST(DsKnnTest, IdenticalSchemasClusterTogether) {
  DsKnnOrganizer organizer;
  // Two families of tables: "sensor" tables and "customer" tables.
  std::vector<size_t> sensor_categories;
  std::vector<size_t> customer_categories;
  for (int i = 0; i < 4; ++i) {
    std::string csv = "device_id,temperature,humidity\n";
    for (int r = 0; r < 20; ++r) {
      csv += std::to_string(i * 100 + r) + "," +
             std::to_string(20 + r % 5) + "," + std::to_string(40 + r % 7) +
             "\n";
    }
    auto t = table::Table::FromCsv("sensor" + std::to_string(i), csv);
    sensor_categories.push_back(organizer.AddDataset(*t));
  }
  for (int i = 0; i < 4; ++i) {
    std::string csv = "customer_name,street_address,city_of_residence\n";
    for (int r = 0; r < 20; ++r) {
      csv += "name" + std::to_string(r) + ",street" + std::to_string(r) +
             ",city" + std::to_string(r % 3) + "\n";
    }
    auto t = table::Table::FromCsv("customer" + std::to_string(i), csv);
    customer_categories.push_back(organizer.AddDataset(*t));
  }
  // All sensors share one category; all customers share another, distinct.
  for (size_t c : sensor_categories) EXPECT_EQ(c, sensor_categories[0]);
  for (size_t c : customer_categories) EXPECT_EQ(c, customer_categories[0]);
  EXPECT_NE(sensor_categories[0], customer_categories[0]);
  EXPECT_EQ(organizer.num_categories(), 2u);
  EXPECT_EQ(organizer.CategoryOf("sensor2"), sensor_categories[0]);
  EXPECT_EQ(organizer.CategoryOf("ghost"), static_cast<size_t>(-1));
}

TEST(DsKnnTest, FirstDatasetFoundsCategory) {
  DsKnnOrganizer organizer;
  auto t = table::Table::FromCsv("solo", "a,b\n1,2\n");
  EXPECT_EQ(organizer.AddDataset(*t), 0u);
  EXPECT_EQ(organizer.num_categories(), 1u);
}

TEST(DsKnnTest, SimilarityIsSymmetricAndBounded) {
  auto t1 = table::Table::FromCsv("t1", "a,b\n1,x\n2,y\n");
  auto t2 = table::Table::FromCsv("t2", "a,c\n1,2.0\n2,3.0\n");
  DatasetFeatures f1 = DsKnnOrganizer::ExtractFeatures(*t1);
  DatasetFeatures f2 = DsKnnOrganizer::ExtractFeatures(*t2);
  DsKnnOrganizer organizer;
  double s12 = organizer.Similarity(f1, f2);
  double s21 = organizer.Similarity(f2, f1);
  EXPECT_DOUBLE_EQ(s12, s21);
  EXPECT_GE(s12, 0.0);
  EXPECT_LE(s12, 1.0);
  EXPECT_NEAR(organizer.Similarity(f1, f1), 1.0, 1e-9);
}

// ---------------------------------------------------------------- org DAG

class OrganizationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::UnionableLakeOptions options;
    options.num_groups = 4;
    options.tables_per_group = 4;
    options.rows_per_table = 40;
    lake_ = new workload::UnionableLake(workload::MakeUnionableLake(options));
    corpus_ = new discovery::Corpus();
    for (const auto& [domain, terms] : lake_->domains) {
      corpus_->RegisterSemanticDomain(domain, terms);
    }
    for (const auto& t : lake_->tables) {
      ASSERT_TRUE(corpus_->AddTable(t).ok());
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete lake_;
  }
  static workload::UnionableLake* lake_;
  static discovery::Corpus* corpus_;
};

workload::UnionableLake* OrganizationTest::lake_ = nullptr;
discovery::Corpus* OrganizationTest::corpus_ = nullptr;

TEST_F(OrganizationTest, BuildProducesSingleRootTree) {
  auto org = Organization::Build(corpus_);
  ASSERT_TRUE(org.ok());
  size_t leaves = 0;
  size_t roots = 0;
  for (const OrgNode& n : org->nodes()) {
    if (n.is_leaf()) ++leaves;
    if (n.parent == -1) ++roots;
  }
  EXPECT_EQ(leaves, corpus_->num_tables());
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(org->root(), org->nodes()[org->root()].id);
  EXPECT_GT(org->MeanDepth(), 0.0);
}

TEST_F(OrganizationTest, NavigationBeatsFlatBaseline) {
  auto org = Organization::Build(corpus_);
  ASSERT_TRUE(org.ok());
  // Query with a group's domain terms: probability of reaching a table of
  // that group should beat 1/N.
  double improved = 0;
  size_t queries = 0;
  for (size_t t = 0; t < lake_->tables.size(); t += 3) {
    size_t group = lake_->group_of[t];
    std::string domain = "domain_g" + std::to_string(group) + "c0";
    std::vector<std::string> query = lake_->domains.at(domain);
    query.resize(5);
    double p = org->DiscoveryProbability(query, t);
    if (p > org->FlatBaselineProbability()) improved += 1;
    ++queries;
  }
  // Most queries should beat the flat baseline.
  EXPECT_GE(improved / static_cast<double>(queries), 0.6);
}

TEST_F(OrganizationTest, GreedyNavigationReachesQueriedGroup) {
  auto org = Organization::Build(corpus_);
  ASSERT_TRUE(org.ok());
  size_t correct = 0;
  size_t total = 0;
  for (size_t group = 0; group < 4; ++group) {
    std::string domain = "domain_g" + std::to_string(group) + "c0";
    std::vector<std::string> query = lake_->domains.at(domain);
    query.resize(8);
    auto reached = org->Navigate(query);
    ASSERT_TRUE(reached.ok());
    if (lake_->group_of[*reached] == group) ++correct;
    ++total;
  }
  EXPECT_GE(correct, total - 1);
}

TEST_F(OrganizationTest, ProbabilitiesSumToOneAcrossLeaves) {
  auto org = Organization::Build(corpus_);
  ASSERT_TRUE(org.ok());
  std::vector<std::string> query = {"domain_g0c0_t0", "domain_g0c0_t1"};
  double total = 0;
  for (size_t t = 0; t < corpus_->num_tables(); ++t) {
    total += org->DiscoveryProbability(query, t);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(OrganizationEmptyTest, EmptyCorpusRejected) {
  discovery::Corpus corpus;
  EXPECT_FALSE(Organization::Build(&corpus).ok());
}

// ---------------------------------------------------------------- KAYAK

TEST(TaskDagTest, TopologicalOrderRespectsDependencies) {
  TaskDag dag;
  std::vector<size_t> log;
  auto task = [&log](size_t id) {
    return [&log, id]() {
      log.push_back(id);
      return Status::OK();
    };
  };
  size_t a = dag.AddTask("a", task(0));
  size_t b = dag.AddTask("b", task(1));
  size_t c = dag.AddTask("c", task(2));
  ASSERT_TRUE(dag.AddDependency(a, b).ok());
  ASSERT_TRUE(dag.AddDependency(b, c).ok());
  ASSERT_TRUE(dag.Execute().ok());
  EXPECT_EQ(log, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(dag.execution_order(), (std::vector<size_t>{a, b, c}));
}

TEST(TaskDagTest, CycleDetected) {
  TaskDag dag;
  size_t a = dag.AddTask("a", nullptr);
  size_t b = dag.AddTask("b", nullptr);
  ASSERT_TRUE(dag.AddDependency(a, b).ok());
  ASSERT_TRUE(dag.AddDependency(b, a).ok());
  EXPECT_TRUE(dag.TopologicalOrder().status().IsAborted());
  EXPECT_TRUE(dag.Execute().IsAborted());
}

TEST(TaskDagTest, SelfDependencyRejected) {
  TaskDag dag;
  size_t a = dag.AddTask("a", nullptr);
  EXPECT_TRUE(dag.AddDependency(a, a).IsInvalidArgument());
  EXPECT_TRUE(dag.AddDependency(a, 99).IsInvalidArgument());
}

TEST(TaskDagTest, ParallelLevelsIdentifyIndependentTasks) {
  // Diamond: a -> {b, c} -> d. b and c share a level.
  TaskDag dag;
  size_t a = dag.AddTask("a", nullptr);
  size_t b = dag.AddTask("b", nullptr);
  size_t c = dag.AddTask("c", nullptr);
  size_t d = dag.AddTask("d", nullptr);
  ASSERT_TRUE(dag.AddDependency(a, b).ok());
  ASSERT_TRUE(dag.AddDependency(a, c).ok());
  ASSERT_TRUE(dag.AddDependency(b, d).ok());
  ASSERT_TRUE(dag.AddDependency(c, d).ok());
  auto levels = dag.ParallelLevels();
  ASSERT_TRUE(levels.ok());
  ASSERT_EQ(levels->size(), 3u);
  EXPECT_EQ((*levels)[0], (std::vector<size_t>{a}));
  EXPECT_EQ(std::set<size_t>((*levels)[1].begin(), (*levels)[1].end()),
            (std::set<size_t>{b, c}));
  EXPECT_EQ((*levels)[2], (std::vector<size_t>{d}));
}

TEST(TaskDagTest, FailureStopsExecution) {
  TaskDag dag;
  std::vector<int> log;
  size_t a = dag.AddTask("a", [&] {
    log.push_back(1);
    return Status::IoError("boom");
  });
  size_t b = dag.AddTask("b", [&] {
    log.push_back(2);
    return Status::OK();
  });
  ASSERT_TRUE(dag.AddDependency(a, b).ok());
  Status s = dag.Execute();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'a' failed"), std::string::npos);
  EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(KayakPipelineTest, PrimitivesExpandAndRunInOrder) {
  KayakPipeline pipeline;
  std::vector<std::string> log;
  auto task = [&log](std::string name) {
    return std::make_pair(name, TaskFn([&log, name] {
                            log.push_back(name);
                            return Status::OK();
                          }));
  };
  size_t profile = pipeline.DefinePrimitive(
      "profile", {task("stats"), task("types")});
  size_t join_check = pipeline.DefinePrimitive(
      "joinability", {task("index"), task("query")});
  auto s1 = pipeline.AddStep(profile);
  auto s2 = pipeline.AddStep(join_check);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(pipeline.AddStepDependency(*s1, *s2).ok());
  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(log, (std::vector<std::string>{"stats", "types", "index",
                                           "query"}));
  EXPECT_EQ(pipeline.expanded().num_tasks(), 4u);
}

TEST(KayakPipelineTest, IndependentStepsCanParallelize) {
  KayakPipeline pipeline;
  auto noop = std::make_pair(std::string("t"), TaskFn());
  size_t p = pipeline.DefinePrimitive("p", {noop});
  auto s1 = pipeline.AddStep(p);
  auto s2 = pipeline.AddStep(p);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(pipeline.Run().ok());
  auto levels = pipeline.expanded().ParallelLevels();
  ASSERT_TRUE(levels.ok());
  // No dependency between the two steps: one level holds both tasks.
  EXPECT_EQ(levels->size(), 1u);
  EXPECT_EQ((*levels)[0].size(), 2u);
}

TEST(KayakPipelineTest, UnknownPrimitiveRejected) {
  KayakPipeline pipeline;
  EXPECT_FALSE(pipeline.AddStep(99).ok());
  EXPECT_TRUE(pipeline.AddStepDependency(0, 1).IsInvalidArgument());
}

TEST(KayakPipelineTest, EmptyPrimitiveRejectedAtRun) {
  KayakPipeline pipeline;
  size_t p = pipeline.DefinePrimitive("empty", {});
  ASSERT_TRUE(pipeline.AddStep(p).ok());
  EXPECT_FALSE(pipeline.Run().ok());
}

}  // namespace
}  // namespace lakekit::organize
