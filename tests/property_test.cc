// Property-based tests on cross-module invariants: the KV store against a
// std::map reference model under random operation sequences; LSH collision
// rates against the theoretical S-curve; full-disjunction postconditions;
// lakehouse snapshot consistency under random operation histories;
// Auto-Validate generalization monotonicity.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>

#include "common/random.h"
#include "integrate/full_disjunction.h"
#include "lakehouse/delta_table.h"
#include "quality/auto_validate.h"
#include "query/expr.h"
#include "storage/kv_store.h"
#include "storage/object_store.h"
#include "text/lsh.h"
#include "text/minhash.h"
#include "workload/generator.h"

#include "common/status.h"

namespace lakekit {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------- KV model checking

/// Random Put/Delete/Flush/Compact/Reopen sequences must behave exactly
/// like a std::map.
class KvModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvModelTest, MatchesReferenceModel) {
  std::string dir =
      (fs::temp_directory_path() /
       ("lakekit_kvmodel_" + std::to_string(GetParam())))
          .string();
  fs::remove_all(dir);
  Rng rng(GetParam());

  storage::KvStoreOptions options;
  options.memtable_flush_bytes = 256;  // force frequent flushes
  options.compaction_trigger_runs = 4;
  auto store = storage::KvStore::Open(dir, options);
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> model;

  for (int op = 0; op < 600; ++op) {
    uint64_t dice = rng.Below(100);
    std::string key = "k" + std::to_string(rng.Below(40));
    if (dice < 55) {
      std::string value = "v" + std::to_string(rng.Next() % 1000);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    } else if (dice < 80) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      model.erase(key);
    } else if (dice < 88) {
      ASSERT_TRUE((*store)->Flush().ok());
    } else if (dice < 93) {
      ASSERT_TRUE((*store)->Compact().ok());
    } else {
      // Reopen: crash-free restart must preserve everything.
      store = storage::KvStore::Open(dir, options);
      ASSERT_TRUE(store.ok());
    }
    // Spot-check a random key.
    std::string probe = "k" + std::to_string(rng.Below(40));
    auto got = (*store)->Get(probe);
    auto expected = model.find(probe);
    if (expected == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << "key " << probe;
    } else {
      ASSERT_TRUE(got.ok()) << "key " << probe;
      EXPECT_EQ(*got, expected->second);
    }
  }
  // Full scan equals the model.
  auto scan = (*store)->Scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ((*scan)[i].first, k);
    EXPECT_EQ((*scan)[i].second, v);
    ++i;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvModelTest,
                         ::testing::Values(1, 7, 42, 1337));

// ------------------------------------------------- LSH S-curve

/// Empirical collision rate tracks the theoretical banding S-curve.
class LshCurveTest : public ::testing::TestWithParam<double> {};

TEST_P(LshCurveTest, EmpiricalMatchesTheory) {
  const double jaccard = GetParam();
  text::MinHasher hasher(128);
  text::LshIndex index(32, 4);
  const int trials = 60;
  int collisions = 0;
  // Per-trial fresh pairs with the target Jaccard.
  for (int t = 0; t < trials; ++t) {
    const int n = 400;
    const int shared = static_cast<int>(2 * n * jaccard / (1 + jaccard));
    std::vector<std::string> a;
    std::vector<std::string> b;
    std::string prefix = "t" + std::to_string(t) + "j" +
                         std::to_string(static_cast<int>(jaccard * 100));
    for (int i = 0; i < shared; ++i) {
      a.push_back(prefix + "s" + std::to_string(i));
      b.push_back(prefix + "s" + std::to_string(i));
    }
    for (int i = shared; i < n; ++i) {
      a.push_back(prefix + "a" + std::to_string(i));
      b.push_back(prefix + "b" + std::to_string(i));
    }
    text::LshIndex fresh(32, 4);
    fresh.Insert(1, hasher.Compute(a));
    if (!fresh.Query(hasher.Compute(b)).empty()) ++collisions;
  }
  double empirical = static_cast<double>(collisions) / trials;
  double theory = index.CollisionProbability(jaccard);
  // Binomial noise over 60 trials: allow a generous band.
  EXPECT_NEAR(empirical, theory, 0.2)
      << "jaccard=" << jaccard << " empirical=" << empirical
      << " theory=" << theory;
}

INSTANTIATE_TEST_SUITE_P(Similarities, LshCurveTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ------------------------------------------------- FD postconditions

/// Full disjunction invariants on random inputs: no subsumed tuples, no
/// duplicates, every source tuple represented.
class FdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPropertyTest, Postconditions) {
  Rng rng(GetParam());
  // Two random tables over a small key domain (forces real joins).
  auto make = [&](const std::string& name, const std::string& attr) {
    table::Table t(name,
                   table::Schema({{"k", table::DataType::kString, true},
                                  {attr, table::DataType::kString, true}}));
    for (int i = 0; i < 12; ++i) {
      LAKEKIT_CHECK_OK(t.AppendRow({table::Value("key" + std::to_string(rng.Below(6))),
                         table::Value(attr + std::to_string(rng.Below(3)))}));
    }
    return t;
  };
  table::Table a = make("a", "x");
  table::Table b = make("b", "y");
  auto integration = integrate::IntegrateSchemas({a, b});
  ASSERT_TRUE(integration.ok());
  auto fd = integrate::FullDisjunction({a, b}, *integration);
  ASSERT_TRUE(fd.ok());

  // No duplicate tuples.
  std::set<std::string> seen;
  for (size_t r = 0; r < fd->num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < fd->num_columns(); ++c) {
      key += fd->at(r, c).is_null() ? "\x01" : fd->at(r, c).ToString();
      key += "\x02";
    }
    EXPECT_TRUE(seen.insert(key).second) << "duplicate tuple in FD";
  }
  // No tuple subsumed by another.
  for (size_t i = 0; i < fd->num_rows(); ++i) {
    for (size_t j = 0; j < fd->num_rows(); ++j) {
      if (i == j) continue;
      bool j_covers_i = true;
      bool j_strictly_more = false;
      for (size_t c = 0; c < fd->num_columns(); ++c) {
        const auto& vi = fd->at(i, c);
        const auto& vj = fd->at(j, c);
        if (!vi.is_null()) {
          if (vj.is_null() || !(vi == vj)) {
            j_covers_i = false;
            break;
          }
        } else if (!vj.is_null()) {
          j_strictly_more = true;
        }
      }
      EXPECT_FALSE(j_covers_i && j_strictly_more)
          << "tuple " << i << " subsumed by " << j;
    }
  }
  // Every source (k, x) pair appears in some output tuple.
  size_t k_col = *fd->schema().IndexOf("k");
  size_t x_col = *fd->schema().IndexOf("x");
  for (size_t r = 0; r < a.num_rows(); ++r) {
    bool represented = false;
    for (size_t o = 0; o < fd->num_rows() && !represented; ++o) {
      if (fd->at(o, k_col) == a.at(r, 0) && fd->at(o, x_col) == a.at(r, 1)) {
        represented = true;
      }
    }
    EXPECT_TRUE(represented) << "source tuple " << r << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPropertyTest,
                         ::testing::Values(3, 11, 29, 71));

// ------------------------------------------------- lakehouse histories

/// Random append/overwrite/delete/checkpoint histories: the latest read
/// must equal an in-memory reference table, and historical reads must be
/// stable after later writes.
class LakehousePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LakehousePropertyTest, SnapshotConsistency) {
  std::string dir =
      (fs::temp_directory_path() /
       ("lakekit_lhprop_" + std::to_string(GetParam())))
          .string();
  fs::remove_all(dir);
  auto store = storage::ObjectStore::Open(dir);
  ASSERT_TRUE(store.ok());
  table::Schema schema({{"id", table::DataType::kInt64, true},
                        {"tag", table::DataType::kString, true}});
  auto t = lakehouse::DeltaTable::Create(&store.value(), "t", schema);
  ASSERT_TRUE(t.ok());

  Rng rng(GetParam());
  std::multiset<int64_t> model;  // reference: ids present
  std::map<int64_t, std::multiset<int64_t>> history;  // version -> ids
  int64_t next_id = 0;

  auto snapshot_ids = [&](std::optional<int64_t> version) {
    std::multiset<int64_t> ids;
    auto data = t->Read(version);
    EXPECT_TRUE(data.ok());
    size_t id_col = *data->schema().IndexOf("id");
    for (size_t r = 0; r < data->num_rows(); ++r) {
      ids.insert(data->at(r, id_col).as_int());
    }
    return ids;
  };

  for (int op = 0; op < 25; ++op) {
    uint64_t dice = rng.Below(100);
    if (dice < 60) {
      // Append 3 rows.
      table::Table rows("t", schema);
      for (int i = 0; i < 3; ++i) {
        LAKEKIT_CHECK_OK(rows.AppendRow({table::Value(next_id),
                              table::Value("tag" + std::to_string(next_id % 4))}));
        model.insert(next_id);
        ++next_id;
      }
      ASSERT_TRUE(t->Append(rows).ok());
    } else if (dice < 75) {
      // Delete ids below a moving threshold.
      int64_t threshold = next_id / 2;
      auto pred = query::Expr::Compare(
          query::CmpOp::kLt, query::Expr::Column("id"),
          query::Expr::Literal(table::Value(threshold)));
      ASSERT_TRUE(t->DeleteWhere(*pred).ok());
      for (auto it = model.begin(); it != model.end();) {
        if (*it < threshold) {
          it = model.erase(it);
        } else {
          ++it;
        }
      }
    } else if (dice < 90) {
      ASSERT_TRUE(t->Checkpoint().ok());
    } else {
      // Overwrite with the current model contents halved.
      table::Table rows("t", schema);
      std::multiset<int64_t> kept;
      bool toggle = false;
      for (int64_t id : model) {
        toggle = !toggle;
        if (toggle) {
          LAKEKIT_CHECK_OK(rows.AppendRow({table::Value(id),
                                table::Value("tag" + std::to_string(id % 4))}));
          kept.insert(id);
        }
      }
      ASSERT_TRUE(t->Overwrite(rows).ok());
      model = std::move(kept);
    }
    int64_t version = *t->Version();
    history[version] = model;
    EXPECT_EQ(snapshot_ids({}), model) << "latest mismatch after op " << op;
  }
  // All recorded historical versions still read back exactly.
  for (const auto& [version, ids] : history) {
    EXPECT_EQ(snapshot_ids(version), ids) << "version " << version;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LakehousePropertyTest,
                         ::testing::Values(5, 17, 99));

// ------------------------------------------------- pattern monotonicity

/// Level-1 patterns generalize level-0: anything the exact-length pattern
/// accepts, the open-length pattern accepts too.
class PatternPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternPropertyTest, GeneralizationMonotone) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Random value: runs of digits/letters/punct.
    std::string value;
    int segments = 1 + static_cast<int>(rng.Below(4));
    for (int s = 0; s < segments; ++s) {
      int kind = static_cast<int>(rng.Below(3));
      int len = 1 + static_cast<int>(rng.Below(5));
      for (int i = 0; i < len; ++i) {
        if (kind == 0) {
          value.push_back(static_cast<char>('0' + rng.Below(10)));
        } else if (kind == 1) {
          value.push_back(static_cast<char>('a' + rng.Below(26)));
        } else {
          value.push_back("-_./"[rng.Below(4)]);
        }
      }
    }
    quality::Pattern exact = quality::ValuePattern(value, 0);
    quality::Pattern open = quality::ValuePattern(value, 1);
    // Both accept their own source.
    EXPECT_TRUE(exact.Matches(value)) << value;
    EXPECT_TRUE(open.Matches(value)) << value;
    // Perturb a digit run length; exact may reject, open must keep
    // accepting if the perturbation only lengthens runs.
    std::string longer;
    for (char c : value) {
      longer.push_back(c);
      if (std::isdigit(static_cast<unsigned char>(c))) longer.push_back(c);
    }
    if (longer != value) {
      EXPECT_TRUE(open.Matches(longer)) << value << " -> " << longer;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest,
                         ::testing::Values(2, 13, 77));

// ------------------------------------------------- MinHash merge law

/// Signature of A ∪ B equals the element-wise min of signatures of A and B
/// — the mergeability property that lets sketches compose incrementally.
TEST(MinHashMergeTest, UnionIsElementwiseMin) {
  text::MinHasher hasher(64);
  Rng rng(31);
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.NextWord(8));
    b.push_back(rng.NextWord(8));
  }
  std::vector<std::string> both = a;
  both.insert(both.end(), b.begin(), b.end());
  auto sa = hasher.Compute(a);
  auto sb = hasher.Compute(b);
  auto su = hasher.Compute(both);
  for (size_t i = 0; i < su.size(); ++i) {
    EXPECT_EQ(su.value(i), std::min(sa.value(i), sb.value(i)));
  }
}

}  // namespace
}  // namespace lakekit
