#include <gtest/gtest.h>

#include <set>

#include "quality/auto_validate.h"
#include "quality/denial_constraints.h"
#include "workload/generator.h"

namespace lakekit::quality {
namespace {

// ---------------------------------------------------------------- DC

TEST(DenialConstraintTest, FromFdShape) {
  enrich::RelaxedFd fd;
  fd.lhs = {"city"};
  fd.rhs = "zip";
  DenialConstraint dc = DenialConstraint::FromFd(fd);
  ASSERT_EQ(dc.predicates.size(), 2u);
  EXPECT_EQ(dc.predicates[0].left_column, "city");
  EXPECT_EQ(dc.predicates[0].op, Op::kEq);
  EXPECT_EQ(dc.predicates[1].left_column, "zip");
  EXPECT_EQ(dc.predicates[1].op, Op::kNe);
  EXPECT_EQ(dc.description, "fd(city -> zip)");
}

TEST(DenialConstraintTest, ApplyOps) {
  table::Value one(int64_t{1});
  table::Value two(int64_t{2});
  EXPECT_TRUE(ApplyOp(Op::kEq, one, one));
  EXPECT_TRUE(ApplyOp(Op::kNe, one, two));
  EXPECT_TRUE(ApplyOp(Op::kLt, one, two));
  EXPECT_TRUE(ApplyOp(Op::kLe, one, one));
  EXPECT_TRUE(ApplyOp(Op::kGt, two, one));
  EXPECT_TRUE(ApplyOp(Op::kGe, two, two));
  EXPECT_FALSE(ApplyOp(Op::kLt, two, one));
}

TEST(ConstraintCheckerTest, FindsViolatingPairs) {
  auto t = table::Table::FromCsv(
      "t", "city,zip\nA,Z1\nA,Z1\nA,Z9\nB,Z2\n");  // row 2 breaks city->zip
  enrich::RelaxedFd fd;
  fd.lhs = {"city"};
  fd.rhs = "zip";
  DenialConstraint dc = DenialConstraint::FromFd(fd);
  auto pairs = ConstraintChecker::FindViolatingPairs(*t, dc);
  // Rows (0,2) and (1,2) violate.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<size_t, size_t>{0, 2}));
  EXPECT_EQ(pairs[1], (std::pair<size_t, size_t>{1, 2}));
}

TEST(ConstraintCheckerTest, UnknownColumnsYieldNoViolations) {
  auto t = table::Table::FromCsv("t", "a\n1\n2\n");
  DenialConstraint dc;
  dc.predicates = {{"ghost", Op::kEq, "ghost"}};
  EXPECT_TRUE(ConstraintChecker::FindViolatingPairs(*t, dc).empty());
}

TEST(ConstraintCheckerTest, RankingPutsPlantedErrorsFirst) {
  workload::DirtyTableOptions options;
  options.num_rows = 300;
  options.num_violations = 10;
  auto dirty = workload::MakeDirtyTable(options);
  auto ranked = ConstraintChecker::InferAndRank(dirty.table);
  ASSERT_FALSE(ranked.empty());
  // Precision@k: the top |planted| ranked rows should mostly be planted
  // violations (each planted row conflicts with many clean rows of its
  // city, so it accumulates far more violation edges).
  std::set<size_t> planted(dirty.violation_rows.begin(),
                           dirty.violation_rows.end());
  size_t hits = 0;
  for (size_t i = 0; i < ranked.size() && i < planted.size(); ++i) {
    if (planted.count(ranked[i].row) > 0) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(planted.size()),
            0.8);
}

TEST(ConstraintCheckerTest, CleanTableHasNoDirtyTuples) {
  auto t = table::Table::FromCsv(
      "t", "city,zip\nA,Z1\nA,Z1\nB,Z2\nB,Z2\nC,Z3\n");
  auto ranked = ConstraintChecker::InferAndRank(*t);
  EXPECT_TRUE(ranked.empty());
}

// ---------------------------------------------------------------- patterns

TEST(ValuePatternTest, Levels) {
  EXPECT_EQ(ValuePattern("AB-1234", 0).ToString(), "a{2}-d{4}");
  EXPECT_EQ(ValuePattern("AB-1234", 1).ToString(), "a+-d+");
  EXPECT_EQ(ValuePattern("2024/01", 0).ToString(), "d{4}/d{2}");
  EXPECT_EQ(ValuePattern("", 0).ToString(), "");
}

TEST(PatternMatchTest, ExactLengths) {
  Pattern p = ValuePattern("Z12", 0);  // a{1}d{2}
  EXPECT_TRUE(p.Matches("Z12"));
  EXPECT_TRUE(p.Matches("A99"));
  EXPECT_FALSE(p.Matches("Z123"));
  EXPECT_FALSE(p.Matches("12Z"));
  EXPECT_FALSE(p.Matches(""));
}

TEST(PatternMatchTest, OpenLengths) {
  Pattern p = ValuePattern("Z12", 1);  // a+d+
  EXPECT_TRUE(p.Matches("Z12"));
  EXPECT_TRUE(p.Matches("ABC99999"));
  EXPECT_FALSE(p.Matches("123"));
}

TEST(ValidatorTest, TrainsOnHomogeneousColumn) {
  std::vector<std::string> zips;
  for (int i = 0; i < 100; ++i) {
    zips.push_back("Z" + std::to_string(10 + i % 80));
  }
  auto validator = Validator::Train(zips);
  ASSERT_TRUE(validator.ok());
  EXPECT_TRUE(validator->Validate("Z42"));
  EXPECT_FALSE(validator->Validate("42Z"));
  EXPECT_FALSE(validator->Validate("hello world"));
  EXPECT_DOUBLE_EQ(validator->RejectionRate(zips), 0.0);
}

TEST(ValidatorTest, PrefersSpecificLevelWhenCoverageAllows) {
  // All values are a{1}d{2}: exact-length level 0 should win, rejecting
  // longer digit runs.
  std::vector<std::string> values;
  for (int i = 10; i < 60; ++i) values.push_back("Q" + std::to_string(i));
  auto validator = Validator::Train(values);
  ASSERT_TRUE(validator.ok());
  EXPECT_TRUE(validator->Validate("Q77"));
  EXPECT_FALSE(validator->Validate("Q7777"));  // level-0 pattern rejects
}

TEST(ValidatorTest, FallsBackToOpenLengthsForMixedLengths) {
  std::vector<std::string> values;
  for (int i = 1; i < 120; ++i) values.push_back("ID" + std::to_string(i));
  // Lengths 1-3 digits: level 0 needs 3 patterns; with max_patterns=2 it
  // cannot reach coverage, so level 1 (d+ open) should be chosen.
  AutoValidateOptions options;
  options.max_patterns = 2;
  auto validator = Validator::Train(values, options);
  ASSERT_TRUE(validator.ok());
  EXPECT_TRUE(validator->Validate("ID5"));
  EXPECT_TRUE(validator->Validate("ID55555"));
}

TEST(ValidatorTest, DriftDetection) {
  std::vector<std::string> train;
  for (int i = 0; i < 200; ++i) train.push_back("SKU-" + std::to_string(1000 + i));
  auto validator = Validator::Train(train);
  ASSERT_TRUE(validator.ok());
  // New batch with 20% drifted format.
  std::vector<std::string> batch;
  for (int i = 0; i < 80; ++i) batch.push_back("SKU-" + std::to_string(2000 + i));
  for (int i = 0; i < 20; ++i) batch.push_back("sku_" + std::to_string(i) + "x");
  double rate = validator->RejectionRate(batch);
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(ValidatorTest, HeterogeneousValuesFailTraining) {
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) {
    // 100 structurally distinct values (growing literal structure).
    values.push_back(std::string(static_cast<size_t>(i % 50), '-') + "x" +
                     std::string(static_cast<size_t>(i % 37), '.'));
  }
  AutoValidateOptions options;
  options.max_patterns = 2;
  options.min_coverage = 0.99;
  EXPECT_FALSE(Validator::Train(values, options).ok());
}

TEST(ValidatorTest, EmptyTrainingRejected) {
  EXPECT_TRUE(Validator::Train({}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace lakekit::quality
