#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/random.h"
#include "query/federation.h"
#include "query/source.h"
#include "table/table.h"

namespace lakekit::query {
namespace {

using std::chrono::milliseconds;
using table::Table;

/// Chaos suite for the federated resilience layer (DESIGN.md §6.7): a
/// fault-injecting source + a ManualClock that the injected latency and the
/// retry backoff both advance, so "slow source under a deadline" schedules
/// replay deterministically in virtual time — no real sleeping anywhere.

/// Number of random fault schedules to sweep. CI cranks this up via
/// LAKEKIT_CHAOS_SCHEDULES for soak runs without a rebuild.
int NumSchedules() {
  constexpr int kDefault = 40;
  const char* env = std::getenv("LAKEKIT_CHAOS_SCHEDULES");
  if (env == nullptr) return kDefault;
  int n = std::atoi(env);
  return n > 0 ? n : kDefault;
}

/// An in-memory source: read-only after setup, so concurrent queries are
/// safe by construction.
class MapSource : public TableSource {
 public:
  void Add(const std::string& name, Table t) { tables_.emplace(name, std::move(t)); }

  Result<Table> ReadAsTable(std::string_view name) override {
    auto it = tables_.find(std::string(name));
    if (it == tables_.end()) {
      return Status::NotFound("no dataset '" + std::string(name) + "'");
    }
    return it->second;
  }

 private:
  std::map<std::string, Table> tables_;
};

Table People() {
  return *Table::FromCsv(
      "people",
      "id,name,age,city\n1,ada,36,delft\n2,bob,41,leiden\n3,eve,29,delft\n"
      "4,dan,,leiden\n");
}

Table Cities() {
  return *Table::FromCsv("cities",
                         "city,country\ndelft,NL\nleiden,NL\naachen,DE\n");
}

constexpr const char* kJoinSql =
    "SELECT name, country FROM people JOIN cities ON people.city = "
    "cities.city WHERE country = 'NL'";

/// One virtual-time test rig: datasets, fault wrapper, clock, engine.
struct Rig {
  explicit Rig(uint64_t seed = 42,
               FederatedEngineOptions engine_options = DefaultOptions()) {
    base.Add("people", People());
    base.Add("cities", Cities());
    flaky = std::make_unique<FlakySource>(&base, seed);
    // Injected source latency and retry backoff both advance the one
    // virtual clock.
    flaky->set_sleep_fn([this](milliseconds d) { clock.Advance(d); });
    engine_options.clock = &clock;
    engine_options.sleep_fn = [this](milliseconds d) { clock.Advance(d); };
    engine = std::make_unique<FederatedEngine>(flaky.get(), engine_options);
  }

  static FederatedEngineOptions DefaultOptions() {
    FederatedEngineOptions options;
    options.retry.max_attempts = 4;
    options.retry.initial_backoff = milliseconds(2);
    options.retry.max_backoff = milliseconds(8);
    options.breaker.failure_threshold = 3;
    options.breaker.failure_window = milliseconds(5000);
    options.breaker.open_cooldown = milliseconds(1000);
    return options;
  }

  milliseconds Elapsed(std::chrono::steady_clock::time_point start) const {
    return std::chrono::duration_cast<milliseconds>(clock.Now() - start);
  }

  MapSource base;
  ManualClock clock;
  std::unique_ptr<FlakySource> flaky;
  std::unique_ptr<FederatedEngine> engine;
};

// ------------------------------------------------------------- cancellation

TEST(QueryChaosTest, CancelledQueryReturnsTheCause) {
  Rig rig;
  CancelSource source;
  source.Cancel();

  QueryOptions options;
  options.cancel = source.token();
  FederationStats stats;
  auto out = rig.engine->Query(kJoinSql, options, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsAborted());
  EXPECT_EQ(out.status().message(), "cancelled");
  // Cancelled before any scan: no source was touched.
  EXPECT_EQ(rig.flaky->reads("people"), 0u);
  EXPECT_EQ(rig.flaky->reads("cities"), 0u);
}

TEST(QueryChaosTest, WatchdogCancellationCarriesDeadlineCause) {
  Rig rig;
  CancelSource source;
  source.Cancel(Status::DeadlineExceeded("watchdog fired"));
  QueryOptions options;
  options.cancel = source.token();
  auto out = rig.engine->Query(kJoinSql, options);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

// ----------------------------------------------------------------- deadline

TEST(QueryChaosTest, ExpiredDeadlineFailsBeforeTouchingSources) {
  Rig rig;
  QueryOptions options;
  options.deadline = Deadline::After(milliseconds(10), &rig.clock);
  rig.clock.Advance(milliseconds(10));
  auto out = rig.engine->Query(kJoinSql, options);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
  EXPECT_EQ(rig.flaky->reads("people"), 0u);
}

TEST(QueryChaosTest, SlowSourceCannotOutliveTheDeadline) {
  Rig rig;
  SourceFaultProfile slow;
  slow.latency = milliseconds(30);
  rig.flaky->SetProfile("people", slow);
  rig.flaky->SetProfile("cities", slow);

  const auto start = rig.clock.Now();
  QueryOptions options;
  options.deadline = Deadline::After(milliseconds(40), &rig.clock);
  auto out = rig.engine->Query(kJoinSql, options);
  // people (30ms) fits the 40ms budget; the cities scan starts inside the
  // budget, its in-flight read overshoots to 60ms, and everything after
  // fails fast — the query never costs more than budget + one read.
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
  EXPECT_LE(rig.Elapsed(start).count(), 40 + 30);
}

// ------------------------------------------------------------------ breaker

TEST(QueryChaosTest, BreakersOpenUnderFaultsAndRecover) {
  Rig rig;
  SourceFaultProfile down;
  down.fail_next = 3;  // exactly the failure threshold
  rig.flaky->SetProfile("cities", down);

  // Three injected failures trip the breaker mid-retry; the fourth attempt
  // is rejected by the open breaker without touching the source.
  FederationStats stats;
  auto out =
      rig.engine->Query("SELECT country FROM cities", QueryOptions{}, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(rig.engine->breaker_state("cities"), CircuitBreaker::State::kOpen);
  EXPECT_EQ(rig.flaky->reads("cities"), 3u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.breaker_rejections, 1u);

  // While open, queries fail fast: zero additional source reads.
  out = rig.engine->Query("SELECT country FROM cities", QueryOptions{}, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(rig.flaky->reads("cities"), 3u);
  EXPECT_EQ(stats.breaker_rejections, 4u);  // every attempt rejected

  // Cooldown served: the next query's first attempt is the half-open
  // probe; the source is healthy again, so the probe closes the breaker.
  rig.clock.Advance(milliseconds(1000));
  out = rig.engine->Query("SELECT country FROM cities", QueryOptions{}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(rig.engine->breaker_state("cities"),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(rig.flaky->reads("cities"), 4u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(QueryChaosTest, DeadlineExpiryDoesNotTripTheBreaker) {
  Rig rig;
  SourceFaultProfile slow;
  slow.latency = milliseconds(50);
  rig.flaky->SetProfile("people", slow);
  for (int i = 0; i < 5; ++i) {
    QueryOptions q;
    q.deadline = Deadline::After(milliseconds(10), &rig.clock);
    auto out = rig.engine->Query("SELECT name FROM people", q);
    ASSERT_FALSE(out.ok());
    EXPECT_TRUE(out.status().IsDeadlineExceeded());
  }
  // Five straight deadline failures are the caller's spent budget, not
  // evidence against the source: the breaker must stay closed.
  EXPECT_EQ(rig.engine->breaker_state("people"),
            CircuitBreaker::State::kClosed);
}

// -------------------------------------------------------------- degradation

TEST(QueryChaosTest, BestEffortDegradesDeadSourceToPartialResults) {
  Rig rig;
  // A healthy query first, so the engine has seen every schema.
  ASSERT_TRUE(rig.engine->Query(kJoinSql).ok());

  SourceFaultProfile dead;
  dead.error_rate = 1.0;
  rig.flaky->SetProfile("cities", dead);

  // Strict: the query fails with the source's error.
  auto strict = rig.engine->Query(kJoinSql);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsUnavailable());

  // Best-effort: cities degrades to an empty table with its cached
  // schema; the join still executes and the output schema is intact.
  QueryOptions options;
  options.degradation = DegradationMode::kBestEffort;
  FederationStats stats;
  auto partial = rig.engine->Query(kJoinSql, options, &stats);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->num_rows(), 0u);  // inner join against an empty side
  EXPECT_TRUE(partial->schema().HasField("name"));
  EXPECT_TRUE(partial->schema().HasField("country"));
  EXPECT_TRUE(stats.partial);
  ASSERT_EQ(stats.failed_sources.size(), 1u);
  EXPECT_EQ(stats.failed_sources[0].dataset, "cities");
  EXPECT_TRUE(stats.failed_sources[0].status.IsUnavailable());
}

TEST(QueryChaosTest, BestEffortCannotInventANeverSeenSchema) {
  Rig rig;
  SourceFaultProfile dead;
  dead.error_rate = 1.0;
  rig.flaky->SetProfile("cities", dead);
  QueryOptions options;
  options.degradation = DegradationMode::kBestEffort;
  // The engine has never scanned cities, so there is no schema-valid empty
  // table to substitute: the failure propagates.
  auto out = rig.engine->Query(kJoinSql, options);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable());
}

TEST(QueryChaosTest, BestEffortNeverMasksDeadlineExpiry) {
  Rig rig;
  ASSERT_TRUE(rig.engine->Query(kJoinSql).ok());
  QueryOptions options;
  options.degradation = DegradationMode::kBestEffort;
  options.deadline = Deadline::After(milliseconds(5), &rig.clock);
  rig.clock.Advance(milliseconds(5));
  auto out = rig.engine->Query(kJoinSql, options);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

// -------------------------------------------------------------- concurrency

TEST(QueryChaosTest, ConcurrentQueriesDontRace) {
  Rig rig;
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        QueryOptions options;
        options.enable_pushdown = (q % 2 == 0);
        FederationStats stats;
        auto out = rig.engine->Query(kJoinSql, options, &stats);
        if (!out.ok()) {
          failures[t] = out.status();
          return;
        }
        // Per-caller stats are computed locally: never torn by the other
        // threads' queries.
        if (stats.source_reads != 2 || stats.rows_scanned != 7) {
          failures[t] = Status::Internal("torn stats");
          return;
        }
        // last_stats() takes the engine lock: safe to poke concurrently
        // (last writer wins, but the snapshot is always consistent).
        (void)rig.engine->last_stats().source_reads;  // ignore: probe only
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": "
                                  << failures[t].ToString();
  }
}

TEST(QueryChaosTest, ConcurrentQueriesAgainstAFlakySourceStayConsistent) {
  Rig rig;
  ASSERT_TRUE(rig.engine->Query(kJoinSql).ok());  // seed the schema cache
  SourceFaultProfile flaky;
  flaky.error_rate = 0.3;
  rig.flaky->SetProfile("cities", flaky);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < 6; ++q) {
        QueryOptions options;
        options.degradation = (t % 2 == 0) ? DegradationMode::kBestEffort
                                           : DegradationMode::kStrict;
        FederationStats stats;
        auto out = rig.engine->Query(kJoinSql, options, &stats);
        // Strict queries may fail kUnavailable (injected or breaker);
        // best-effort queries must succeed (schema is cached). Anything
        // else is a bug.
        if (out.ok()) continue;
        if (options.degradation == DegradationMode::kBestEffort ||
            !out.status().IsUnavailable()) {
          failures[t] = out.status();
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": "
                                  << failures[t].ToString();
  }
}

// --------------------------------------------------------------- seed sweep

/// Randomized fault schedules: random per-source error rates and
/// latencies, a random deadline budget, random degradation mode. Three
/// invariants hold for every schedule:
///   1. the query's status is OK, kUnavailable, or kDeadlineExceeded —
///      faults never surface as anything else;
///   2. virtual time never exceeds budget + one in-flight source read;
///   3. after the fault window, breakers re-close and queries succeed.
TEST(QueryChaosTest, RandomFaultSchedulesUpholdResilienceContract) {
  const int schedules = NumSchedules();
  Rng meta(20260808);
  for (int i = 0; i < schedules; ++i) {
    const uint64_t seed = meta.Next();
    SCOPED_TRACE("schedule " + std::to_string(i) + " (seed=" +
                 std::to_string(seed) + ")");
    Rng rng(seed);
    Rig rig(seed);

    // A healthy warm-up query populates every schema (so best-effort
    // schedules can degrade) and must always succeed.
    ASSERT_TRUE(rig.engine->Query(kJoinSql).ok());

    const auto latency_of = [&rng] {
      return milliseconds(static_cast<int64_t>(rng.Below(21)));
    };
    milliseconds max_latency(0);
    for (const char* dataset : {"people", "cities"}) {
      SourceFaultProfile profile;
      profile.error_rate = 0.2 + 0.6 * rng.NextDouble();  // 0.2 .. 0.8
      profile.latency = latency_of();
      max_latency = std::max(max_latency, profile.latency);
      rig.flaky->SetProfile(dataset, profile);
    }

    const int64_t budget_ms = 1 + static_cast<int64_t>(rng.Below(50));
    for (int q = 0; q < 6; ++q) {
      QueryOptions options;
      options.enable_pushdown = rng.Below(2) == 0;
      options.degradation = rng.Below(2) == 0 ? DegradationMode::kBestEffort
                                              : DegradationMode::kStrict;
      const bool armed = rng.Below(2) == 0;
      const auto start = rig.clock.Now();
      if (armed) {
        options.deadline =
            Deadline::After(milliseconds(budget_ms), &rig.clock);
      }
      FederationStats stats;
      auto out = rig.engine->Query(kJoinSql, options, &stats);

      // Invariant 1: only the contract's status codes surface.
      if (!out.ok()) {
        EXPECT_TRUE(out.status().IsUnavailable() ||
                    out.status().IsDeadlineExceeded())
            << out.status().ToString();
      } else if (stats.partial) {
        EXPECT_FALSE(stats.failed_sources.empty());
        EXPECT_TRUE(out->schema().HasField("name"));
        EXPECT_TRUE(out->schema().HasField("country"));
      }
      // Invariant 2: an armed deadline bounds virtual time by budget plus
      // at most one in-flight source read.
      if (armed) {
        EXPECT_LE(rig.Elapsed(start).count(),
                  budget_ms + max_latency.count())
            << "query " << q << " outlived its deadline";
      }
    }

    // Invariant 3: faults end, breakers recover. One query after the
    // cooldown re-closes any open breaker through its half-open probe.
    rig.flaky->ClearFaults();
    rig.clock.Advance(milliseconds(10000));
    auto recovered = rig.engine->Query(kJoinSql);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->num_rows(), 4u);
    EXPECT_EQ(rig.engine->breaker_state("people"),
              CircuitBreaker::State::kClosed);
    EXPECT_EQ(rig.engine->breaker_state("cities"),
              CircuitBreaker::State::kClosed);
  }
}

}  // namespace
}  // namespace lakekit::query
