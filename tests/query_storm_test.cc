// Overload chaos suite (DESIGN.md §10): concurrent query storms against a
// small MemoryBudget and a bounded AdmissionController, in the style of
// query_chaos_test.cc. The invariants, swept across schedules:
//   - accounted bytes never exceed the process budget (peak_used <= cap);
//   - shed queries fail fast with retriable kUnavailable, over-budget
//     queries with permanent kResourceExhausted — nothing else leaks out;
//   - queued entries honor their own deadline (virtual time, no sleeping);
//   - admission stats balance: admitted == completed + failed, and
//     submitted == admitted + shed + expired + cancelled;
//   - every account settles: budget.used() returns to the cache's share.
// The suite passes under TSan (CI's tsan job runs it with the `chaos`
// label); no deadlock = the storm joins within the test timeout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/memory_budget.h"
#include "query/admission.h"
#include "query/federation.h"
#include "query/source.h"
#include "table/table.h"

namespace lakekit::query {
namespace {

using std::chrono::milliseconds;
using table::Table;

/// Number of storm schedules to sweep; CI cranks it via
/// LAKEKIT_CHAOS_SCHEDULES. Each schedule spawns a real thread pack, so the
/// storm runs a fraction of the virtual-time chaos suite's count.
int NumStorms() {
  constexpr int kDefault = 40;
  const char* env = std::getenv("LAKEKIT_CHAOS_SCHEDULES");
  const int n = env != nullptr ? std::atoi(env) : kDefault;
  return std::max(6, (n > 0 ? n : kDefault) / 4);
}

/// Spins (with real sleeps) until `cond` holds; fails the test on timeout.
void WaitUntil(const std::function<bool()>& cond) {
  for (int i = 0; i < 10000; ++i) {
    if (cond()) return;
    std::this_thread::sleep_for(milliseconds(1));
  }
  FAIL() << "condition not reached within timeout";
}

/// An in-memory source: read-only after setup, so concurrent queries are
/// safe by construction.
class MapSource : public TableSource {
 public:
  void Add(const std::string& name, Table t) {
    tables_.emplace(name, std::move(t));
  }

  Result<Table> ReadAsTable(std::string_view name) override {
    auto it = tables_.find(std::string(name));
    if (it == tables_.end()) {
      return Status::NotFound("no dataset '" + std::string(name) + "'");
    }
    return it->second;
  }

 private:
  std::map<std::string, Table> tables_;
};

/// A dataset big enough that its decoded bytes dominate every budget in
/// this suite, so caps derived from EstimateTableBytes behave predictably.
Table BigTable(const std::string& name, size_t rows) {
  std::string csv = "id,grp,val,tag\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i % 17) + "," +
           std::to_string(static_cast<double>(i) * 0.5) + ",t" +
           std::to_string(i % 7) + "\n";
  }
  return *Table::FromCsv(name, csv);
}

constexpr const char* kLightSql = "SELECT id FROM big WHERE id < 100";
constexpr const char* kAggSql =
    "SELECT grp, COUNT(*) AS n, AVG(val) AS mean FROM big "
    "WHERE id < 400 GROUP BY grp";
// Scans both datasets: the second scan's decoded-table charge is what blows
// a per-query cap of 1.5x one table.
constexpr const char* kHeavySql =
    "SELECT tag, grp_r FROM big JOIN big2 ON big.id = big2.id "
    "WHERE val >= 0";

struct StormRig {
  explicit StormRig(size_t rows = 1500) {
    source.Add("big", BigTable("big", rows));
    source.Add("big2", BigTable("big2", rows));
    table_bytes = table::EstimateTableBytes(
        *source.ReadAsTable("big"));
  }

  /// Builds the engine once budget/admission sizing is chosen.
  void Start(size_t budget_capacity, size_t per_query_cap,
             size_t max_concurrent, size_t max_queue_depth) {
    budget = std::make_unique<MemoryBudget>(budget_capacity);
    AdmissionOptions aopts;
    aopts.max_concurrent = max_concurrent;
    aopts.max_queue_depth = max_queue_depth;
    admission = std::make_unique<AdmissionController>(aopts);
    FederatedEngineOptions eopts;
    eopts.retry.max_attempts = 1;  // overload statuses must not be retried
    eopts.memory_budget = budget.get();
    eopts.query_reservation_bytes = per_query_cap;
    eopts.admission = admission.get();
    engine = std::make_unique<FederatedEngine>(&source, eopts);
  }

  MapSource source;
  size_t table_bytes = 0;
  std::unique_ptr<MemoryBudget> budget;
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<FederatedEngine> engine;
};

// ------------------------------------------------------- deterministic edges

TEST(QueryStormTest, OverBudgetQueryFailsPermanentlyAndSettles) {
  StormRig rig;
  // The per-query cap admits one decoded table but not two: the heavy
  // two-source join must exhaust, the light single-source probe must not.
  rig.Start(/*budget_capacity=*/rig.table_bytes * 8,
            /*per_query_cap=*/rig.table_bytes + rig.table_bytes / 2,
            /*max_concurrent=*/4, /*max_queue_depth=*/4);

  auto heavy = rig.engine->Query(kHeavySql, QueryOptions{});
  ASSERT_FALSE(heavy.ok());
  EXPECT_TRUE(heavy.status().IsResourceExhausted())
      << heavy.status().ToString();
  // Over-budget mid-query is permanent — a retry against the same budget
  // re-exhausts it. Shedding (kUnavailable) is the transient one.
  EXPECT_FALSE(IsTransientError(heavy.status()));
  // The failed query's account settled everything on the way out.
  EXPECT_EQ(rig.budget->used(), 0u);
  EXPECT_GT(rig.budget->exhausted_count(), 0u);

  auto light = rig.engine->Query(kLightSql, QueryOptions{});
  LAKEKIT_CHECK_OK(light.status());
  EXPECT_EQ(light->num_rows(), 100u);
  EXPECT_EQ(rig.budget->used(), 0u);

  const AdmissionStats astats = rig.admission->stats();
  EXPECT_EQ(astats.admitted, 2u);
  EXPECT_EQ(astats.completed, 1u);
  EXPECT_EQ(astats.failed, 1u);
}

TEST(QueryStormTest, BestEffortDegradesInsteadOfFailingOnExhaustion) {
  StormRig rig;
  // Budget far below one decoded table: every source read's charge is
  // refused. Strict fails; best-effort substitutes empty schema-valid
  // tables and reports which sources degraded.
  rig.Start(/*budget_capacity=*/rig.table_bytes / 8,
            /*per_query_cap=*/0, /*max_concurrent=*/2, /*max_queue_depth=*/2);

  auto strict = rig.engine->Query(kLightSql, QueryOptions{});
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsResourceExhausted());

  QueryOptions best_effort;
  best_effort.degradation = DegradationMode::kBestEffort;
  FederationStats stats;
  // Degradation needs a last-known schema; the strict attempt above never
  // cached one (the read itself failed at the budget, after the source
  // replied — so the schema IS cached). See ReadSource: schema is recorded
  // from the successful source read before the charge.
  auto degraded = rig.engine->Query(kLightSql, best_effort, &stats);
  LAKEKIT_CHECK_OK(degraded.status());
  EXPECT_EQ(degraded->num_rows(), 0u);
  EXPECT_TRUE(stats.partial);
  ASSERT_EQ(stats.failed_sources.size(), 1u);
  EXPECT_EQ(stats.failed_sources[0].dataset, "big");
  EXPECT_TRUE(stats.failed_sources[0].status.IsResourceExhausted());
  EXPECT_EQ(rig.budget->used(), 0u);
}

TEST(QueryStormTest, QueuedQueryHonorsDeadlineInVirtualTime) {
  ManualClock clock;
  StormRig rig;
  rig.Start(/*budget_capacity=*/rig.table_bytes * 4, /*per_query_cap=*/0,
            /*max_concurrent=*/1, /*max_queue_depth=*/4);

  // Hold the only slot directly, so the query below must queue.
  Result<AdmissionController::Ticket> slot = rig.admission->Admit();
  LAKEKIT_CHECK_OK(slot.status());

  QueryOptions options;
  options.deadline = Deadline::After(milliseconds(50), &clock);
  FederationStats stats;
  options.stats_out = &stats;
  Status queued_status;
  std::thread waiter([&] {
    queued_status = rig.engine->Query(kLightSql, options).status();
  });
  WaitUntil([&] { return rig.admission->queue_depth() == 1; });
  clock.Advance(milliseconds(100));
  waiter.join();

  EXPECT_TRUE(queued_status.IsDeadlineExceeded()) << queued_status.ToString();
  // It left the queue without running: no source read, no reservation.
  EXPECT_EQ(stats.source_reads, 0u);
  EXPECT_EQ(rig.budget->used(), 0u);
  EXPECT_EQ(rig.admission->stats().expired_in_queue, 1u);
  slot->Finish(true);
}

TEST(QueryStormTest, CancelledWhileQueuedDoesNoWork) {
  StormRig rig;
  rig.Start(/*budget_capacity=*/rig.table_bytes * 4, /*per_query_cap=*/0,
            /*max_concurrent=*/1, /*max_queue_depth=*/4);
  Result<AdmissionController::Ticket> slot = rig.admission->Admit();
  LAKEKIT_CHECK_OK(slot.status());

  CancelSource cancel;
  QueryOptions options;
  options.cancel = cancel.token();
  FederationStats stats;
  Status queued_status;
  std::thread waiter([&] {
    queued_status = rig.engine->Query(kLightSql, options, &stats).status();
  });
  WaitUntil([&] { return rig.admission->queue_depth() == 1; });
  cancel.Cancel();
  waiter.join();

  EXPECT_TRUE(queued_status.IsAborted()) << queued_status.ToString();
  EXPECT_EQ(stats.source_reads, 0u);
  EXPECT_EQ(rig.admission->stats().cancelled_in_queue, 1u);
  slot->Finish(true);
}

// --------------------------------------------------------------- the storm

TEST(QueryStormTest, ConcurrentStormUpholdsOverloadInvariants) {
  StormRig rig;
  const size_t t_bytes = rig.table_bytes;
  for (int schedule = 0; schedule < NumStorms(); ++schedule) {
    // Sweep the pressure surface: admission width, queue depth, and how
    // many concurrent decoded tables the process budget admits.
    const size_t max_concurrent = 1 + static_cast<size_t>(schedule) % 4;
    const size_t max_queue_depth = static_cast<size_t>(schedule) % 3;
    const size_t process_tables = 2 + static_cast<size_t>(schedule) % 5;
    rig.Start(/*budget_capacity=*/t_bytes * process_tables,
              /*per_query_cap=*/t_bytes + t_bytes / 2, max_concurrent,
              max_queue_depth);

    constexpr int kThreads = 6;
    constexpr int kQueriesPerThread = 4;
    std::atomic<uint64_t> ok_count{0};
    std::atomic<uint64_t> shed_count{0};
    std::atomic<uint64_t> exhausted_count{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const char* sql =
              (t + i) % 3 == 0 ? kHeavySql : ((t + i) % 3 == 1 ? kAggSql
                                                               : kLightSql);
          // The stats_out satellite: each concurrent caller points the
          // per-query sink at its own struct — no last-writer races.
          FederationStats stats;
          QueryOptions options;
          options.stats_out = &stats;
          const Status s = rig.engine->Query(sql, options).status();
          if (s.ok()) {
            ok_count.fetch_add(1);
            EXPECT_GE(stats.source_reads, 1u);
          } else if (s.IsUnavailable()) {
            // Shed at the front door: retriable, and provably did nothing.
            shed_count.fetch_add(1);
            EXPECT_TRUE(IsTransientError(s));
            EXPECT_EQ(stats.source_reads, 0u);
          } else if (s.IsResourceExhausted()) {
            // Over budget mid-flight: permanent for this attempt.
            exhausted_count.fetch_add(1);
            EXPECT_FALSE(IsTransientError(s));
          } else {
            ADD_FAILURE() << "unexpected storm status: " << s.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    // Accounting settled and never overshot.
    EXPECT_EQ(rig.budget->used(), 0u) << "schedule " << schedule;
    EXPECT_LE(rig.budget->peak_used(), rig.budget->capacity())
        << "schedule " << schedule;

    // Stats balance, cross-checked against the callers' own tallies.
    const AdmissionStats stats = rig.admission->stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kThreads * kQueriesPerThread));
    EXPECT_EQ(stats.submitted, stats.admitted + stats.shed +
                                   stats.expired_in_queue +
                                   stats.cancelled_in_queue);
    EXPECT_EQ(stats.admitted, stats.completed + stats.failed);
    EXPECT_EQ(stats.shed, shed_count.load());
    EXPECT_EQ(stats.completed, ok_count.load());
    EXPECT_EQ(stats.failed, exhausted_count.load());
    EXPECT_EQ(rig.admission->in_flight(), 0u);
    EXPECT_EQ(rig.admission->queue_depth(), 0u);
  }
}

TEST(QueryStormTest, CacheAndQueriesShareOneProcessBudget) {
  StormRig rig;
  const size_t t_bytes = rig.table_bytes;
  MemoryBudget budget(t_bytes * 4);
  TableCacheOptions copts;
  copts.capacity_bytes = t_bytes * 2;
  copts.process_budget = &budget;
  TableCache cache(copts);

  AdmissionController admission;
  FederatedEngineOptions eopts;
  eopts.memory_budget = &budget;
  eopts.admission = &admission;
  eopts.table_cache = &cache;
  FederatedEngine engine(&rig.source, eopts);

  // Miss: the scan admits the decoded table into the cache, whose account
  // charges the shared process budget.
  FederationStats first;
  LAKEKIT_CHECK_OK(engine.Query(kLightSql, QueryOptions{}, &first).status());
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_GE(cache.account().used(), t_bytes);
  EXPECT_EQ(budget.used(), cache.account().used());

  // Hit: served from the pinned entry; the query account charges nothing
  // for the table, so process usage is unchanged after it settles.
  const size_t after_miss = budget.used();
  FederationStats second;
  LAKEKIT_CHECK_OK(engine.Query(kLightSql, QueryOptions{}, &second).status());
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(budget.used(), after_miss);
  EXPECT_LE(budget.peak_used(), budget.capacity());
}

}  // namespace
}  // namespace lakekit::query
