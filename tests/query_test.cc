#include <gtest/gtest.h>

#include <filesystem>

#include "json/parser.h"
#include "query/expr.h"
#include "query/federation.h"
#include "query/operators.h"
#include "query/sql.h"
#include "storage/polystore.h"

namespace lakekit::query {
namespace {

using table::Table;
using table::Value;

Table People() {
  return *Table::FromCsv(
      "people",
      "id,name,age,city\n1,ada,36,delft\n2,bob,41,leiden\n3,eve,29,delft\n"
      "4,dan,,leiden\n");
}

Table Cities() {
  return *Table::FromCsv("cities",
                         "city,country\ndelft,NL\nleiden,NL\naachen,DE\n");
}

// ---------------------------------------------------------------- expr

TEST(ExprTest, LiteralAndColumn) {
  Table t = People();
  auto row = t.Row(0);
  EXPECT_EQ(Expr::Literal(Value(int64_t{7}))->Eval(t.schema(), row)->as_int(),
            7);
  EXPECT_EQ(Expr::Column("name")->Eval(t.schema(), row)->as_string(), "ada");
  EXPECT_FALSE(Expr::Column("ghost")->Eval(t.schema(), row).ok());
}

TEST(ExprTest, ComparisonsAndNullPropagation) {
  Table t = People();
  auto pred = Expr::Compare(CmpOp::kGt, Expr::Column("age"),
                            Expr::Literal(Value(int64_t{30})));
  EXPECT_TRUE(pred->Eval(t.schema(), t.Row(0))->as_bool());   // 36 > 30
  EXPECT_FALSE(pred->Eval(t.schema(), t.Row(2))->as_bool());  // 29 > 30
  EXPECT_TRUE(pred->Eval(t.schema(), t.Row(3))->is_null());   // NULL age
  EXPECT_FALSE(*EvalPredicate(*pred, t.schema(), t.Row(3)));
}

TEST(ExprTest, ThreeValuedLogic) {
  Table t = People();
  auto null_cmp = Expr::Compare(CmpOp::kGt, Expr::Column("age"),
                                Expr::Literal(Value(int64_t{0})));
  auto true_lit = Expr::Literal(Value(true));
  auto false_lit = Expr::Literal(Value(false));
  auto row = t.Row(3);  // NULL age
  // NULL AND false = false; NULL OR true = true; NULL AND true = NULL.
  EXPECT_FALSE(Expr::Logical(LogicalOp::kAnd, null_cmp, false_lit)
                   ->Eval(t.schema(), row)
                   ->as_bool());
  EXPECT_TRUE(Expr::Logical(LogicalOp::kOr, null_cmp, true_lit)
                  ->Eval(t.schema(), row)
                  ->as_bool());
  EXPECT_TRUE(Expr::Logical(LogicalOp::kAnd, null_cmp, true_lit)
                  ->Eval(t.schema(), row)
                  ->is_null());
}

TEST(ExprTest, ArithmeticAndDivision) {
  Table t = People();
  auto row = t.Row(0);
  auto doubled = Expr::Arith(ArithOp::kMul, Expr::Column("age"),
                             Expr::Literal(Value(int64_t{2})));
  EXPECT_EQ(doubled->Eval(t.schema(), row)->as_int(), 72);
  auto div0 = Expr::Arith(ArithOp::kDiv, Expr::Column("age"),
                          Expr::Literal(Value(int64_t{0})));
  EXPECT_TRUE(div0->Eval(t.schema(), row)->is_null());
  auto bad = Expr::Arith(ArithOp::kAdd, Expr::Column("name"),
                         Expr::Literal(Value(int64_t{1})));
  EXPECT_FALSE(bad->Eval(t.schema(), row).ok());
}

TEST(ExprTest, IsNullAndNot) {
  Table t = People();
  auto is_null = Expr::IsNull(Expr::Column("age"));
  EXPECT_FALSE(is_null->Eval(t.schema(), t.Row(0))->as_bool());
  EXPECT_TRUE(is_null->Eval(t.schema(), t.Row(3))->as_bool());
  auto negated = Expr::Not(is_null);
  EXPECT_TRUE(negated->Eval(t.schema(), t.Row(0))->as_bool());
}

TEST(ExprTest, CollectColumnsAndToString) {
  auto e = Expr::Logical(
      LogicalOp::kAnd,
      Expr::Compare(CmpOp::kEq, Expr::Column("a"), Expr::Literal(Value(1))),
      Expr::Compare(CmpOp::kLt, Expr::Column("b"),
                    Expr::Literal(Value("x"))));
  std::vector<std::string> columns;
  e->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(e->ToString(), "((a = 1) AND (b < 'x'))");
}

// ---------------------------------------------------------------- operators

TEST(OperatorsTest, Filter) {
  auto pred = Expr::Compare(CmpOp::kEq, Expr::Column("city"),
                            Expr::Literal(Value("delft")));
  auto out = Filter(People(), *pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(OperatorsTest, Project) {
  auto out = Project(People(), {"name", "id"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_columns(), 2u);
  EXPECT_EQ(out->schema().field(0).name, "name");
  EXPECT_FALSE(Project(People(), {"ghost"}).ok());
}

TEST(OperatorsTest, InnerJoin) {
  auto out = HashJoin(People(), Cities(), "city", "city");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);  // all people have a city match
  // Collided column names suffixed.
  EXPECT_TRUE(out->schema().HasField("city"));
  EXPECT_TRUE(out->schema().HasField("city_r"));
  EXPECT_TRUE(out->schema().HasField("country"));
}

TEST(OperatorsTest, LeftJoinKeepsUnmatched) {
  auto people = *Table::FromCsv("p", "name,city\nada,delft\nzed,mars\n");
  auto out = HashJoin(people, Cities(), "city", "city", JoinType::kLeft);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  size_t country = *out->schema().IndexOf("country");
  EXPECT_EQ(out->at(0, country).as_string(), "NL");
  EXPECT_TRUE(out->at(1, country).is_null());
}

TEST(OperatorsTest, NullKeysNeverJoin) {
  auto left = *Table::FromCsv("l", "k,v\n,1\nx,2\n");
  auto right = *Table::FromCsv("r", "k,w\n,9\nx,8\n");
  auto out = HashJoin(left, right, "k", "k");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);  // only x joins
}

TEST(OperatorsTest, AggregateGlobal) {
  auto out = Aggregate(People(), {},
                       {{AggFn::kCount, "", "n"},
                        {AggFn::kAvg, "age", "avg_age"},
                        {AggFn::kMin, "age", "min_age"},
                        {AggFn::kMax, "age", "max_age"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_int(), 4);
  EXPECT_NEAR(out->at(0, 1).as_double(), (36 + 41 + 29) / 3.0, 1e-9);
  EXPECT_EQ(out->at(0, 2).as_int(), 29);
  EXPECT_EQ(out->at(0, 3).as_int(), 41);
}

TEST(OperatorsTest, AggregateGrouped) {
  auto out =
      Aggregate(People(), {"city"}, {{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  // First-seen group order: delft then leiden.
  EXPECT_EQ(out->at(0, 0).as_string(), "delft");
  EXPECT_EQ(out->at(0, 1).as_int(), 2);
  EXPECT_EQ(out->at(1, 1).as_int(), 2);
}

TEST(OperatorsTest, AggregateEmptyInputGlobalRow) {
  auto empty = *Table::FromCsv("e", "x\n");
  auto out = Aggregate(empty, {}, {{AggFn::kCount, "", "n"},
                                   {AggFn::kSum, "x", "s"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_int(), 0);
  EXPECT_TRUE(out->at(0, 1).is_null());
}

TEST(OperatorsTest, SortAndLimit) {
  auto sorted = Sort(People(), "age", /*ascending=*/false);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->at(0, 1).as_string(), "bob");  // age 41 first
  // Ascending puts NULL first.
  auto asc = Sort(People(), "age", true);
  EXPECT_TRUE(asc->at(0, 2).is_null());
  auto limited = Limit(*sorted, 2);
  EXPECT_EQ(limited.num_rows(), 2u);
}

// ---------------------------------------------------------------- SQL

TableResolver FixtureResolver() {
  return [](const std::string& name) -> Result<Table> {
    if (name == "people") return People();
    if (name == "cities") return Cities();
    return Status::NotFound("no table " + name);
  };
}

TEST(SqlTest, SelectStar) {
  auto out = RunSql("SELECT * FROM people", FixtureResolver());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
  EXPECT_EQ(out->num_columns(), 4u);
}

TEST(SqlTest, WhereAndProjection) {
  auto out = RunSql(
      "SELECT name FROM people WHERE city = 'delft' AND age > 30",
      FixtureResolver());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_string(), "ada");
}

TEST(SqlTest, OrPrecedence) {
  auto out = RunSql(
      "SELECT name FROM people WHERE city = 'leiden' OR city = 'delft' AND "
      "age < 30",
      FixtureResolver());
  ASSERT_TRUE(out.ok());
  // AND binds tighter: leiden(2) + delft&&age<30 (eve) = 3 rows.
  EXPECT_EQ(out->num_rows(), 3u);
}

TEST(SqlTest, IsNullPredicate) {
  auto out = RunSql("SELECT name FROM people WHERE age IS NULL",
                    FixtureResolver());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_string(), "dan");
  auto not_null = RunSql("SELECT name FROM people WHERE age IS NOT NULL",
                         FixtureResolver());
  EXPECT_EQ(not_null->num_rows(), 3u);
}

TEST(SqlTest, JoinQuery) {
  auto out = RunSql(
      "SELECT name, country FROM people JOIN cities ON people.city = "
      "cities.city WHERE country = 'NL' ORDER BY name",
      FixtureResolver());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
  EXPECT_EQ(out->at(0, 0).as_string(), "ada");
}

TEST(SqlTest, GroupByWithAggregates) {
  auto out = RunSql(
      "SELECT city, COUNT(*) AS n, AVG(age) AS mean_age FROM people GROUP "
      "BY city ORDER BY n DESC",
      FixtureResolver());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_TRUE(out->schema().HasField("n"));
  EXPECT_TRUE(out->schema().HasField("mean_age"));
}

TEST(SqlTest, OrderByDescAndLimit) {
  auto out = RunSql("SELECT name FROM people ORDER BY age DESC LIMIT 2",
                    FixtureResolver());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->at(0, 0).as_string(), "bob");
  EXPECT_EQ(out->at(1, 0).as_string(), "ada");
}

TEST(SqlTest, ArithmeticInWhere) {
  auto out = RunSql("SELECT name FROM people WHERE age * 2 > 80",
                    FixtureResolver());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_string(), "bob");
}

TEST(SqlTest, ParseErrors) {
  EXPECT_FALSE(ParseSql("SELEC * FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FORM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t garbage").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

TEST(SqlTest, UnknownTableAndColumn) {
  EXPECT_FALSE(RunSql("SELECT * FROM ghost", FixtureResolver()).ok());
  EXPECT_FALSE(
      RunSql("SELECT ghost FROM people", FixtureResolver()).ok());
}

// ---------------------------------------------------------------- federated

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "lakekit_fed_test")
               .string();
    std::filesystem::remove_all(dir_);
    auto ps = storage::Polystore::Open(dir_);
    ASSERT_TRUE(ps.ok());
    polystore_ =
        std::make_unique<storage::Polystore>(std::move(*ps));
    // A relational table, a document collection, and a raw CSV object —
    // one dataset per store kind.
    ASSERT_TRUE(polystore_->StoreTable("people", People()).ok());
    std::vector<json::Value> docs;
    docs.push_back(*json::Parse(R"({"city":"delft","country":"NL"})"));
    docs.push_back(*json::Parse(R"({"city":"leiden","country":"NL"})"));
    docs.push_back(*json::Parse(R"({"city":"aachen","country":"DE"})"));
    ASSERT_TRUE(polystore_->StoreDocuments("cities", std::move(docs)).ok());
    ASSERT_TRUE(polystore_
                    ->StoreObject("raw_events", "landing/events.csv",
                                  "city,clicks\ndelft,10\nleiden,20\n")
                    .ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<storage::Polystore> polystore_;
};

TEST_F(FederationTest, QueryAcrossStores) {
  FederatedEngine engine(polystore_.get());
  auto out = engine.Query(
      "SELECT name, country FROM people JOIN cities ON people.city = "
      "cities.city WHERE country = 'NL'");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
}

TEST_F(FederationTest, ObjectStoreDatasetQueryable) {
  FederatedEngine engine(polystore_.get());
  auto out = engine.Query("SELECT clicks FROM raw_events WHERE city = 'delft'");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0).as_int(), 10);
}

TEST_F(FederationTest, PushdownReducesShippedRows) {
  FederatedEngine engine(polystore_.get());
  auto with = engine.Query("SELECT name FROM people WHERE city = 'delft'");
  ASSERT_TRUE(with.ok());
  FederationStats pushed = engine.last_stats();
  auto without = engine.Query("SELECT name FROM people WHERE city = 'delft'",
                              /*enable_pushdown=*/false);
  ASSERT_TRUE(without.ok());
  FederationStats unpushed = engine.last_stats();
  EXPECT_EQ(with->num_rows(), without->num_rows());
  EXPECT_EQ(pushed.pushed_conjuncts, 1u);
  EXPECT_EQ(unpushed.pushed_conjuncts, 0u);
  EXPECT_LT(pushed.rows_shipped, unpushed.rows_shipped);
}

TEST_F(FederationTest, EachSourceReadExactlyOnce) {
  FederatedEngine engine(polystore_.get());
  // Join query: one polystore read per source (no separate schema-probe
  // read), and rows_scanned counts each source's rows exactly once.
  ASSERT_TRUE(engine
                  .Query("SELECT name, country FROM people JOIN cities ON "
                         "people.city = cities.city WHERE country = 'NL'")
                  .ok());
  EXPECT_EQ(engine.last_stats().source_reads, 2u);
  EXPECT_EQ(engine.last_stats().rows_scanned, 7u);  // 4 people + 3 cities

  // Single-source query: one read.
  ASSERT_TRUE(engine.Query("SELECT name FROM people WHERE age > 30").ok());
  EXPECT_EQ(engine.last_stats().source_reads, 1u);
  EXPECT_EQ(engine.last_stats().rows_scanned, 4u);
}

TEST_F(FederationTest, PushdownShrinksJoinInputs) {
  FederatedEngine engine(polystore_.get());
  const std::string sql =
      "SELECT name FROM people JOIN cities ON people.city = cities.city "
      "WHERE country = 'NL' AND age > 30";
  ASSERT_TRUE(engine.Query(sql).ok());
  size_t join_with = engine.last_stats().join_input_rows;
  ASSERT_TRUE(engine.Query(sql, /*enable_pushdown=*/false).ok());
  size_t join_without = engine.last_stats().join_input_rows;
  EXPECT_LT(join_with, join_without);
}

TEST(ConjunctsTest, SplitAndCombine) {
  auto a = Expr::Compare(CmpOp::kEq, Expr::Column("x"),
                         Expr::Literal(Value(1)));
  auto b = Expr::Compare(CmpOp::kEq, Expr::Column("y"),
                         Expr::Literal(Value(2)));
  auto c = Expr::Compare(CmpOp::kEq, Expr::Column("z"),
                         Expr::Literal(Value(3)));
  auto combined =
      Expr::Logical(LogicalOp::kAnd, Expr::Logical(LogicalOp::kAnd, a, b), c);
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(combined, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  // OR is not split.
  conjuncts.clear();
  SplitConjuncts(Expr::Logical(LogicalOp::kOr, a, b), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
  EXPECT_EQ(CombineConjuncts({a}), a);
}

}  // namespace
}  // namespace lakekit::query
