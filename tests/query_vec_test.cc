#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "query/expr.h"
#include "query/operators.h"
#include "query/reference_ops.h"
#include "query/vec.h"
#include "query/zone_map.h"
#include "table/table.h"

// Differential test suite for the vectorized query engine: the morsel-
// parallel operators in query/operators.h must be *bit-identical* — schema,
// row order, and the exact bits of every double — to the row-at-a-time
// interpreter in query/reference_ops.h, for any thread count. Runs under
// the same sanitizer configuration as the rest of the suite, so the
// 8-thread runs double as a race check under TSan.

namespace lakekit::query {
namespace {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

// ---------------------------------------------------------------- helpers

/// Bit-exact cell equality: same dynamic type and, for doubles, the same
/// bit pattern (distinguishes 0.0 from -0.0 and any two NaN payloads).
bool CellBitsEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kBool:
      return a.as_bool() == b.as_bool();
    case DataType::kInt64:
      return a.as_int() == b.as_int();
    case DataType::kDouble:
      return std::bit_cast<uint64_t>(a.as_double()) ==
             std::bit_cast<uint64_t>(b.as_double());
    case DataType::kString:
      return a.as_string() == b.as_string();
  }
  return false;
}

::testing::AssertionResult BitIdentical(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return ::testing::AssertionFailure()
           << "schema mismatch: " << a.schema().ToString() << " vs "
           << b.schema().ToString();
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count mismatch: " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!CellBitsEqual(a.at(r, c), b.at(r, c))) {
        return ::testing::AssertionFailure()
               << "cell (" << r << ", " << c << ") differs: "
               << a.at(r, c).ToString() << " vs " << b.at(r, c).ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// A random value of the given type, drawn from deliberately nasty pools:
/// ints straddling 2^53, doubles including -0.0 / huge / NaN, strings
/// including "" / numeric look-alikes / '\x01'-'\x02' bytes (the old
/// group-key separator).
Value RandomTypedValue(Rng& rng, DataType type) {
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value(rng.Below(2) == 0);
    case DataType::kInt64:
      // Kept small so random arithmetic never overflows int64 (signed
      // overflow is UB; the asan preset runs UBSan). The 2^53 comparison
      // and summation semantics get dedicated arithmetic-free tests below.
      return Value(rng.Between(-50, 50));
    case DataType::kDouble: {
      switch (rng.Below(8)) {
        case 0:
          return Value(0.0);
        case 1:
          return Value(-0.0);
        case 2:
          return Value(1e300);
        case 3:
          return Value(std::nan(""));
        default:
          return Value(static_cast<double>(rng.Between(-40, 40)) + 0.25);
      }
    }
    case DataType::kString: {
      static const char* kPool[] = {"",  "1",  "2.0",    "true",
                                    "a", "bb", "\x01",   "\x02",
                                    "a\x01" "b",          "a\x02" "b"};
      const size_t n = sizeof(kPool) / sizeof(kPool[0]);
      if (rng.Below(4) == 0) return Value(rng.NextWord(3));
      return Value(std::string(kPool[rng.Below(n)]));
    }
  }
  return Value::Null();
}

DataType RandomLaneType(Rng& rng) {
  static const DataType kTypes[] = {DataType::kBool, DataType::kInt64,
                                    DataType::kDouble, DataType::kString};
  return kTypes[rng.Below(4)];
}

/// A fuzzed table: 1-4 columns of random schema types; ~15% NULLs and ~7%
/// off-schema cells (e.g. a string in an int64 column) to force the
/// vectorized loader off its typed-lane fast path.
Table FuzzTable(Rng& rng, size_t rows, const std::string& name) {
  Schema schema;
  const size_t cols = 1 + rng.Below(4);
  for (size_t c = 0; c < cols; ++c) {
    schema.AddField(Field{"c" + std::to_string(c), RandomLaneType(rng), true});
  }
  Table t(name, schema);
  t.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      if (rng.Below(100) < 15) {
        row.push_back(Value::Null());
      } else if (rng.Below(100) < 7) {
        row.push_back(RandomTypedValue(rng, RandomLaneType(rng)));
      } else {
        row.push_back(RandomTypedValue(rng, schema.field(c).type));
      }
    }
    EXPECT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

/// A random expression over the table's columns: comparisons, three-valued
/// logic, arithmetic, NOT, IS NULL, literals of every type.
ExprPtr RandomExpr(Rng& rng, const std::vector<std::string>& cols,
                   int depth) {
  if (depth <= 0 || rng.Below(4) == 0) {
    if (!cols.empty() && rng.Below(3) != 0) {
      return Expr::Column(cols[rng.Below(cols.size())]);
    }
    DataType t = rng.Below(8) == 0 ? DataType::kNull : RandomLaneType(rng);
    return Expr::Literal(RandomTypedValue(rng, t));
  }
  switch (rng.Below(5)) {
    case 0: {
      static const CmpOp kCmp[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                   CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
      return Expr::Compare(kCmp[rng.Below(6)],
                           RandomExpr(rng, cols, depth - 1),
                           RandomExpr(rng, cols, depth - 1));
    }
    case 1:
      return Expr::Logical(rng.Below(2) == 0 ? LogicalOp::kAnd : LogicalOp::kOr,
                           RandomExpr(rng, cols, depth - 1),
                           RandomExpr(rng, cols, depth - 1));
    case 2: {
      static const ArithOp kArith[] = {ArithOp::kAdd, ArithOp::kSub,
                                       ArithOp::kMul, ArithOp::kDiv};
      return Expr::Arith(kArith[rng.Below(4)], RandomExpr(rng, cols, depth - 1),
                         RandomExpr(rng, cols, depth - 1));
    }
    case 3:
      return Expr::Not(RandomExpr(rng, cols, depth - 1));
    default:
      return Expr::IsNull(RandomExpr(rng, cols, depth - 1));
  }
}

ExecOptions PoolOpts(ThreadPool* pool) {
  ExecOptions opts;
  opts.pool = pool;
  return opts;
}

/// Runs one operator through the reference interpreter and the vectorized
/// engine on a 1-thread and an 8-thread pool, asserting ok-ness parity and
/// bit-identical tables on success. Error *codes* are not compared: when a
/// query has several independent error sites the engines may surface
/// different ones, but they must agree on whether the query fails.
template <typename RefFn, typename VecFn>
void ExpectSameOutcome(const char* what, RefFn ref_fn, VecFn vec_fn,
                       ThreadPool* serial, ThreadPool* wide) {
  Result<Table> ref = ref_fn();
  Result<Table> v1 = vec_fn(PoolOpts(serial));
  Result<Table> v8 = vec_fn(PoolOpts(wide));
  ASSERT_EQ(ref.ok(), v1.ok()) << what << ": serial ok-ness diverges";
  ASSERT_EQ(ref.ok(), v8.ok()) << what << ": parallel ok-ness diverges";
  if (!ref.ok()) return;
  EXPECT_TRUE(BitIdentical(*ref, *v1)) << what << " (serial)";
  EXPECT_TRUE(BitIdentical(*v1, *v8)) << what << " (parallel vs serial)";
}

std::vector<AggSpec> RandomAggs(Rng& rng, const Table& t) {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFn::kCount, "", "n"});  // COUNT(*)
  const size_t n = 1 + rng.Below(3);
  static const AggFn kFns[] = {AggFn::kCount, AggFn::kSum, AggFn::kAvg,
                               AggFn::kMin, AggFn::kMax};
  for (size_t i = 0; i < n; ++i) {
    AggSpec spec;
    spec.fn = kFns[rng.Below(5)];
    spec.column =
        t.schema().field(rng.Below(t.num_columns())).name;
    spec.alias = "a" + std::to_string(i);
    aggs.push_back(spec);
  }
  return aggs;
}

// ---------------------------------------------------------------- tests

/// The headline differential: >= 100 randomized tables through every
/// operator, vectorized (1 and 8 threads) vs the interpreter.
TEST(QueryVecDifferentialTest, RandomizedTablesMatchReference) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  // Sizes cross the morsel boundary (2048) so multi-morsel merge paths run.
  const size_t kSizes[] = {0, 1, 2, 7, 33, 100, 512, 2048, 2049, 4500};
  for (uint64_t seed = 0; seed < 110; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 7919 + 1);
    const size_t rows = kSizes[seed % 10];
    Table t = FuzzTable(rng, rows, "fuzz");
    std::vector<std::string> cols = t.schema().FieldNames();

    // Filter: three random predicates per table.
    for (int i = 0; i < 3; ++i) {
      ExprPtr pred = RandomExpr(rng, cols, 3);
      SCOPED_TRACE("filter " + pred->ToString());
      ExpectSameOutcome(
          "Filter", [&] { return reference::Filter(t, *pred); },
          [&](const ExecOptions& o) { return Filter(t, *pred, o); }, &serial,
          &wide);
    }

    // Project: random column subset (duplicates allowed).
    std::vector<std::string> proj;
    for (size_t i = 0, n = 1 + rng.Below(cols.size()); i < n; ++i) {
      proj.push_back(cols[rng.Below(cols.size())]);
    }
    ExpectSameOutcome(
        "Project", [&] { return reference::Project(t, proj); },
        [&](const ExecOptions&) { return Project(t, proj); }, &serial, &wide);

    // Sort: every column, both directions (stability + NULL placement).
    for (const std::string& c : cols) {
      for (bool asc : {true, false}) {
        ExpectSameOutcome(
            "Sort", [&] { return reference::Sort(t, c, asc); },
            [&](const ExecOptions&) { return Sort(t, c, asc); }, &serial,
            &wide);
      }
    }

    // Limit: below, at, and beyond the row count.
    for (size_t n : {size_t{0}, rows / 2, rows, rows + 3}) {
      EXPECT_TRUE(BitIdentical(reference::Limit(t, n), Limit(t, n)));
    }

    // Aggregate: global and grouped by a random column subset.
    std::vector<AggSpec> aggs = RandomAggs(rng, t);
    std::vector<std::string> group_by;
    if (rng.Below(4) != 0) {
      for (size_t i = 0, n = 1 + rng.Below(2); i < n && i < cols.size(); ++i) {
        group_by.push_back(cols[i]);
      }
    }
    ExpectSameOutcome(
        "Aggregate",
        [&] { return reference::Aggregate(t, group_by, aggs); },
        [&](const ExecOptions& o) { return Aggregate(t, group_by, aggs, o); },
        &serial, &wide);

    // HashJoin: small right side drawn from the same value pools so keys
    // actually collide; inner and left.
    Table right = FuzzTable(rng, rng.Below(64), "rhs");
    const std::string lcol = cols[rng.Below(cols.size())];
    const std::string rcol =
        right.schema().field(rng.Below(right.num_columns())).name;
    for (JoinType jt : {JoinType::kInner, JoinType::kLeft}) {
      ExpectSameOutcome(
          "HashJoin",
          [&] { return reference::HashJoin(t, right, lcol, rcol, jt); },
          [&](const ExecOptions& o) {
            return HashJoin(t, right, lcol, rcol, jt, o);
          },
          &serial, &wide);
    }
  }
}

TEST(QueryVecEdgeTest, ZeroRowInputs) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  Table empty = *Table::FromCsv("empty", "a,b\n");
  ExprPtr pred = Expr::Compare(CmpOp::kGt, Expr::Column("a"),
                               Expr::Literal(Value(int64_t{0})));
  auto filtered = Filter(empty, *pred, {&wide});
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 0u);
  // An unknown column over zero rows succeeds, exactly like the row-at-a-
  // time interpreter (which never evaluates the predicate).
  ExprPtr ghost = Expr::Compare(CmpOp::kGt, Expr::Column("ghost"),
                                Expr::Literal(Value(int64_t{0})));
  EXPECT_EQ(Filter(empty, *ghost, {&serial}).ok(),
            reference::Filter(empty, *ghost).ok());

  auto joined = HashJoin(empty, empty, "a", "a", JoinType::kInner, {&wide});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 0u);

  // Global aggregate over zero rows: one row, SUM/AVG NULL, COUNT 0.
  auto agg = Aggregate(empty, {},
                       {AggSpec{AggFn::kCount, "", "n"},
                        AggSpec{AggFn::kSum, "a", "s"}},
                       {&wide});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->num_rows(), 1u);
  EXPECT_EQ(agg->at(0, 0).as_int(), 0);
  EXPECT_TRUE(agg->at(0, 1).is_null());
  // Grouped aggregate over zero rows: zero groups.
  auto grouped =
      Aggregate(empty, {"a"}, {AggSpec{AggFn::kCount, "", "n"}}, {&wide});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 0u);
}

TEST(QueryVecEdgeTest, AllNullInputs) {
  ThreadPool wide(8);
  Schema schema;
  schema.AddField(Field{"k", DataType::kInt64, true});
  schema.AddField(Field{"v", DataType::kDouble, true});
  Table t("nulls", schema);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  }
  ExprPtr pred = Expr::Compare(CmpOp::kGt, Expr::Column("k"),
                               Expr::Literal(Value(int64_t{0})));
  auto filtered = Filter(t, *pred, {&wide});
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 0u);  // NULL predicate excludes

  // NULL keys never join, so even NULL = NULL produces no matches.
  auto inner = HashJoin(t, t, "k", "k", JoinType::kInner, {&wide});
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 0u);
  auto left = HashJoin(t, t, "k", "k", JoinType::kLeft, {&wide});
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->num_rows(), 10u);

  // All-NULL aggregation input: one NULL group; SUM/MIN NULL, COUNT(v) 0.
  auto agg = Aggregate(t, {"k"},
                       {AggSpec{AggFn::kCount, "v", "n"},
                        AggSpec{AggFn::kSum, "v", "s"},
                        AggSpec{AggFn::kMin, "v", "m"}},
                       {&wide});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->num_rows(), 1u);
  EXPECT_TRUE(agg->at(0, 0).is_null());
  EXPECT_EQ(agg->at(0, 1).as_int(), 0);
  EXPECT_TRUE(agg->at(0, 2).is_null());
  EXPECT_TRUE(agg->at(0, 3).is_null());
}

TEST(QueryVecEdgeTest, SortIsStableAndNullsFirst) {
  Schema schema;
  schema.AddField(Field{"k", DataType::kInt64, true});
  schema.AddField(Field{"seq", DataType::kInt64, true});
  Table t("dups", schema);
  // Keys 2,1,2,NULL,1,2 with a sequence column marking input order.
  const int64_t keys[] = {2, 1, 2, -1, 1, 2};
  for (int64_t i = 0; i < 6; ++i) {
    Value k = keys[i] < 0 ? Value::Null() : Value(keys[i]);
    ASSERT_TRUE(t.AppendRow({k, Value(i)}).ok());
  }
  auto sorted = Sort(t, "k", /*ascending=*/true);
  ASSERT_TRUE(sorted.ok());
  // NULL first, then 1s and 2s each in input order.
  const int64_t want_seq[] = {3, 1, 4, 0, 2, 5};
  for (size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(sorted->at(r, 1).as_int(), want_seq[r]) << "row " << r;
  }
}

TEST(QueryVecEdgeTest, LimitBeyondRowCount) {
  Table t = *Table::FromCsv("t", "a\n1\n2\n3\n");
  EXPECT_EQ(Limit(t, 99).num_rows(), 3u);
  EXPECT_EQ(Limit(t, 3).num_rows(), 3u);
  EXPECT_EQ(Limit(t, 0).num_rows(), 0u);
}

/// Regression (group-key encoding): the old implementation keyed groups on
/// ToString() values joined with '\x02', which collapsed int 1 with string
/// "1" and made strings containing the separator ambiguous across columns.
TEST(QueryVecRegressionTest, AggregateKeysDoNotCollide) {
  ThreadPool wide(8);
  Schema schema;
  schema.AddField(Field{"x", DataType::kString, true});
  schema.AddField(Field{"y", DataType::kString, true});
  Table t("collide", schema);
  // Two rows whose concatenated encodings are identical but whose key
  // vectors differ, plus an int-1 / string-"1" pair in the first column.
  ASSERT_TRUE(t.AppendRow({Value(std::string("a\x02") + "b"), Value("c")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(std::string("b\x02") + "c")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("z")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("z")}).ok());
  for (const ExecOptions& opts : {ExecOptions{}, PoolOpts(&wide)}) {
    auto agg =
        Aggregate(t, {"x", "y"}, {AggSpec{AggFn::kCount, "", "n"}}, opts);
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->num_rows(), 4u);  // all four rows are distinct groups
    for (size_t r = 0; r < agg->num_rows(); ++r) {
      EXPECT_EQ(agg->at(r, 2).as_int(), 1) << "group " << r;
    }
  }
  // The reference interpreter agrees (the fix landed in both engines).
  auto ref = reference::Aggregate(t, {"x", "y"},
                                  {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->num_rows(), 4u);
}

/// Regression (SUM widening): int64 sums used to accumulate in double,
/// silently losing integer precision past 2^53.
TEST(QueryVecRegressionTest, SumOverInt64StaysExact) {
  ThreadPool wide(8);
  constexpr int64_t kBig = int64_t{1} << 53;  // 2^53: doubles skip odd values
  Schema schema;
  schema.AddField(Field{"v", DataType::kInt64, true});
  Table t("big", schema);
  ASSERT_TRUE(t.AppendRow({Value(kBig)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
  auto agg = Aggregate(t, {}, {AggSpec{AggFn::kSum, "v", "s"}}, {&wide});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->schema().field(0).type, DataType::kInt64);
  ASSERT_TRUE(agg->at(0, 0).is_int());
  EXPECT_EQ(agg->at(0, 0).as_int(), kBig + 1);  // not representable as double

  // A stray off-schema double cell widens the summed *value*; the declared
  // field type stays int64 (schema-on-read: the declared type describes the
  // column, cells may deviate — as in the input itself).
  ASSERT_TRUE(t.AppendRow({Value(0.5)}).ok());
  auto widened = Aggregate(t, {}, {AggSpec{AggFn::kSum, "v", "s"}}, {&wide});
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(widened->schema().field(0).type, DataType::kInt64);
  ASSERT_TRUE(widened->at(0, 0).is_double());
  EXPECT_EQ(widened->at(0, 0).as_double(),
            static_cast<double>(kBig) + 1.0 + 0.5);
}

/// Int64 values past 2^53 compare *by double* (Value semantics: 2^53 and
/// 2^53+1 are equal, hash equal, and sort as duplicates). The vectorized
/// engine must reproduce this everywhere it short-cuts through typed lanes:
/// filter comparisons, sort keys, group keys, join keys. Comparison-only —
/// no arithmetic — so nothing can overflow.
TEST(QueryVecDifferentialTest, HugeInt64sUseDoubleComparisonSemantics) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  constexpr int64_t kBig = int64_t{1} << 53;
  Schema schema;
  schema.AddField(Field{"v", DataType::kInt64, true});
  Table t("big", schema);
  const int64_t vals[] = {kBig,     kBig + 1, kBig - 1, -kBig, -kBig - 1,
                          kBig + 1, 3,        -3,       0,     kBig};
  for (int64_t v : vals) {
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  }
  ExprPtr pred = Expr::Compare(CmpOp::kGe, Expr::Column("v"),
                               Expr::Literal(Value(kBig + 1)));
  ExpectSameOutcome(
      "Filter", [&] { return reference::Filter(t, *pred); },
      [&](const ExecOptions& o) { return Filter(t, *pred, o); }, &serial,
      &wide);
  ExpectSameOutcome(
      "Sort", [&] { return reference::Sort(t, "v", true); },
      [&](const ExecOptions&) { return Sort(t, "v", true); }, &serial, &wide);
  const std::vector<AggSpec> aggs = {AggSpec{AggFn::kCount, "", "n"},
                                     AggSpec{AggFn::kMin, "v", "lo"}};
  ExpectSameOutcome(
      "Aggregate", [&] { return reference::Aggregate(t, {"v"}, aggs); },
      [&](const ExecOptions& o) { return Aggregate(t, {"v"}, aggs, o); },
      &serial, &wide);
  ExpectSameOutcome(
      "HashJoin",
      [&] {
        return reference::HashJoin(t, t, "v", "v", JoinType::kInner);
      },
      [&](const ExecOptions& o) {
        return HashJoin(t, t, "v", "v", JoinType::kInner, o);
      },
      &serial, &wide);
}

/// Double summation must be bit-identical across thread counts: partials
/// are merged in morsel order regardless of which thread computed them.
TEST(QueryVecDeterminismTest, ParallelDoubleSumsAreBitIdentical) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  Rng rng(1234);
  Schema schema;
  schema.AddField(Field{"g", DataType::kInt64, true});
  schema.AddField(Field{"v", DataType::kDouble, true});
  Table t("sums", schema);
  const size_t rows = 3 * kMorselSize + 17;  // multiple uneven morsels
  t.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_TRUE(t.AppendRow({Value(rng.Between(0, 5)),
                             Value(rng.NextDouble() * 1e6 - 5e5)})
                    .ok());
  }
  const std::vector<AggSpec> aggs = {AggSpec{AggFn::kSum, "v", "s"},
                                     AggSpec{AggFn::kAvg, "v", "m"}};
  auto a = Aggregate(t, {"g"}, aggs, {&serial});
  auto b = Aggregate(t, {"g"}, aggs, {&wide});
  auto ref = reference::Aggregate(t, {"g"}, aggs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(BitIdentical(*a, *b));
  EXPECT_TRUE(BitIdentical(*ref, *a));
}

// --------------------------------------------------------------- zone maps

/// The pruning differential: Filter with a zone map must agree with the
/// reference interpreter on ok-ness and bits for random tables and
/// predicates — including predicates whose evaluation errors (arithmetic on
/// strings, NOT on numbers) and chunks containing NaN. Pruning that skipped
/// an erroring morsel, or trusted a NaN-poisoned range, would diverge here.
TEST(ZoneMapDifferentialTest, PrunedFilterMatchesReference) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  // Sizes chosen to exercise multi-chunk maps (kMorselSize = 2048) and the
  // ragged final chunk.
  const size_t kSizes[] = {0, 1, 100, 2048, 2049, 4500, 6144};
  size_t pruned_total = 0;
  for (uint64_t seed = 0; seed < 70; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 104729 + 3);
    Table t = FuzzTable(rng, kSizes[seed % 7], "fuzz");
    const ZoneMap zones = ZoneMap::Build(t);
    ASSERT_EQ(zones.num_chunks(), NumMorsels(t.num_rows()));
    std::vector<std::string> cols = t.schema().FieldNames();
    for (int i = 0; i < 4; ++i) {
      ExprPtr pred = RandomExpr(rng, cols, 3);
      SCOPED_TRACE("pred " + pred->ToString());
      Result<Table> ref = reference::Filter(t, *pred);
      for (ThreadPool* pool : {&serial, &wide}) {
        FilterExecStats stats;
        Result<Table> got =
            Filter(t, *pred, &zones, PoolOpts(pool), &stats);
        ASSERT_EQ(ref.ok(), got.ok()) << "ok-ness diverges under pruning";
        if (ref.ok()) EXPECT_TRUE(BitIdentical(*ref, *got));
        pruned_total += stats.morsels_pruned;
      }
    }
  }
  // The sweep must actually exercise the pruned path, not just fall back
  // to kMaybe everywhere.
  EXPECT_GT(pruned_total, 0u);
}

TEST(ZoneMapTest, BuildComputesPerChunkStats) {
  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64, true});
  schema.AddField(Field{"x", DataType::kDouble, true});
  Table t("zt", schema);
  const size_t rows = kMorselSize + 10;
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(r)),
                             r == 5 ? Value::Null() : Value(1.5)})
                    .ok());
  }
  const ZoneMap zones = ZoneMap::Build(t);
  ASSERT_EQ(zones.num_chunks(), 2u);
  ASSERT_EQ(zones.num_columns(), 2u);
  const ZoneStats& id0 = zones.stats(0, 0);
  EXPECT_EQ(id0.min, Value(int64_t{0}));
  EXPECT_EQ(id0.max, Value(static_cast<int64_t>(kMorselSize - 1)));
  EXPECT_EQ(id0.null_count, 0u);
  EXPECT_TRUE(id0.has_values);
  const ZoneStats& x0 = zones.stats(0, 1);
  EXPECT_EQ(x0.null_count, 1u);
  const ZoneStats& id1 = zones.stats(1, 0);
  EXPECT_EQ(id1.min, Value(static_cast<int64_t>(kMorselSize)));
  EXPECT_EQ(id1.row_count, 10u);
}

TEST(ZoneMapTest, ClusteredPredicatePrunesAndSelectsWholesale) {
  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64, true});
  Table t("ids", schema);
  const size_t rows = 4 * kMorselSize;
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(r))}).ok());
  }
  const ZoneMap zones = ZoneMap::Build(t);
  ThreadPool serial(1);

  // Point predicate: only chunk 0 can match; 3 of 4 morsels pruned.
  ExprPtr point = Expr::Compare(CmpOp::kEq, Expr::Column("id"),
                                Expr::Literal(Value(int64_t{7})));
  FilterExecStats stats;
  Result<Table> r1 = Filter(t, *point, &zones, PoolOpts(&serial), &stats);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->num_rows(), 1u);
  EXPECT_EQ(stats.morsels_total, 4u);
  EXPECT_EQ(stats.morsels_pruned, 3u);

  // Always-true predicate: every morsel selected without evaluation.
  ExprPtr all = Expr::Compare(CmpOp::kGe, Expr::Column("id"),
                              Expr::Literal(Value(int64_t{0})));
  FilterExecStats all_stats;
  Result<Table> r2 = Filter(t, *all, &zones, PoolOpts(&serial), &all_stats);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_rows(), rows);
  EXPECT_EQ(all_stats.morsels_selected, 4u);
  EXPECT_EQ(all_stats.morsels_pruned, 0u);
  EXPECT_TRUE(BitIdentical(*reference::Filter(t, *all), *r2));
}

TEST(ZoneMapTest, NaNChunkIsNeverPruned) {
  Schema schema;
  schema.AddField(Field{"x", DataType::kDouble, true});
  Table t("nan", schema);
  ASSERT_TRUE(t.AppendRow({Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(std::nan(""))}).ok());
  ASSERT_TRUE(t.AppendRow({Value(3.0)}).ok());
  const ZoneMap zones = ZoneMap::Build(t);
  EXPECT_TRUE(zones.stats(0, 0).unordered);
  // x > 100 looks always-false by [min, max], but the NaN row makes the
  // range untrusted: the chunk must be evaluated, and the result must
  // match the reference exactly.
  ExprPtr pred = Expr::Compare(CmpOp::kGt, Expr::Column("x"),
                               Expr::Literal(Value(100.0)));
  ThreadPool serial(1);
  FilterExecStats stats;
  Result<Table> got = Filter(t, *pred, &zones, PoolOpts(&serial), &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.morsels_pruned, 0u);
  EXPECT_TRUE(BitIdentical(*reference::Filter(t, *pred), *got));
}

TEST(ZoneMapTest, ErroringPredicateIsNotPruned) {
  Schema schema;
  schema.AddField(Field{"s", DataType::kString, true});
  Table t("strs", schema);
  ASSERT_TRUE(t.AppendRow({Value("a")}).ok());
  const ZoneMap zones = ZoneMap::Build(t);
  // s + 1 errors on every row; the zone map must not "prune away" the
  // error (the range of an arithmetic node is unknown and poisoned).
  ExprPtr pred = Expr::Compare(
      CmpOp::kGt,
      Expr::Arith(ArithOp::kAdd, Expr::Column("s"),
                  Expr::Literal(Value(int64_t{1}))),
      Expr::Literal(Value(int64_t{0})));
  ThreadPool serial(1);
  Result<Table> got = Filter(t, *pred, &zones, PoolOpts(&serial), nullptr);
  Result<Table> ref = reference::Filter(t, *pred);
  EXPECT_EQ(ref.ok(), got.ok());
  EXPECT_FALSE(got.ok());
}

TEST(ZoneMapTest, MismatchedZoneMapIsIgnored) {
  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64, true});
  Table t("ids", schema);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(r))}).ok());
  }
  Table other("other", schema);  // zero rows: zone map cannot line up
  const ZoneMap stale = ZoneMap::Build(other);
  ExprPtr pred = Expr::Compare(CmpOp::kLt, Expr::Column("id"),
                               Expr::Literal(Value(int64_t{3})));
  ThreadPool serial(1);
  FilterExecStats stats;
  Result<Table> got = Filter(t, *pred, &stale, PoolOpts(&serial), &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_rows(), 3u);
  EXPECT_EQ(stats.morsels_pruned, 0u);
  EXPECT_EQ(stats.morsels_selected, 0u);
}

}  // namespace
}  // namespace lakekit::query
