#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/cancellation.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/thread_pool.h"

namespace lakekit {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------- deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), milliseconds::max());
  EXPECT_TRUE(Deadline::Infinite().is_infinite());
}

TEST(DeadlineTest, ExpiresOnManualClock) {
  ManualClock clock;
  Deadline d = Deadline::After(milliseconds(10), &clock);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), milliseconds(10));

  clock.Advance(milliseconds(9));
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), milliseconds(1));

  clock.Advance(milliseconds(1));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), milliseconds(0));

  // Well past expiry: remaining stays clamped at zero.
  clock.Advance(milliseconds(100));
  EXPECT_EQ(d.remaining(), milliseconds(0));
}

TEST(DeadlineTest, CopiesObserveTheSameExpiry) {
  ManualClock clock;
  Deadline d = Deadline::After(milliseconds(5), &clock);
  Deadline copy = d;  // value type: layers pass it down by copy
  clock.Advance(milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(copy.expired());
}

// ------------------------------------------------------------ cancellation

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancellationTest, CancelReachesEveryToken) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies share the underlying state
  EXPECT_FALSE(a.cancelled());

  source.Cancel();
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(a.status().IsAborted());
  EXPECT_EQ(a.status().message(), "cancelled");
}

TEST(CancellationTest, FirstCauseWins) {
  CancelSource source;
  CancelToken token = source.token();
  source.Cancel(Status::DeadlineExceeded("watchdog fired"));
  source.Cancel(Status::Aborted("too late"));
  EXPECT_TRUE(token.status().IsDeadlineExceeded());
  EXPECT_EQ(token.status().message(), "watchdog fired");
}

// ---------------------------------------------------------- circuit breaker

CircuitBreakerOptions BreakerOptions(const Clock* clock) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.failure_window = milliseconds(100);
  options.open_cooldown = milliseconds(50);
  options.clock = clock;
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, TripsOpenAtThresholdAndRejects) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  Status admit = breaker.Admit();
  EXPECT_TRUE(admit.IsUnavailable());
  EXPECT_EQ(breaker.rejected(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  // The streak restarted: two more failures stay below the threshold.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, FailuresAgeOutOfTheWindow) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  // The streak ages past the 100ms window; the next failure starts a new
  // window instead of tripping the breaker.
  clock.Advance(milliseconds(101));
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cooldown not served yet: still rejecting.
  clock.Advance(milliseconds(49));
  EXPECT_TRUE(breaker.Admit().IsUnavailable());

  // Cooldown served: the first caller becomes the probe, concurrent
  // callers keep failing fast.
  clock.Advance(milliseconds(1));
  EXPECT_TRUE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Admit().IsUnavailable());

  // Probe success closes the breaker and traffic flows again.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAFullCooldown) {
  ManualClock clock;
  CircuitBreaker breaker(BreakerOptions(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(50));
  ASSERT_TRUE(breaker.Admit().ok());  // probe
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The cooldown restarted at the probe failure.
  clock.Advance(milliseconds(49));
  EXPECT_TRUE(breaker.Admit().IsUnavailable());
  clock.Advance(milliseconds(1));
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ----------------------------------------------- ParallelFor interruption

TEST(ParallelForInterruptTest, CancelledTokenSkipsAllChunks) {
  ThreadPool pool(4);
  CancelSource source;
  source.Cancel(Status::Aborted("caller gave up"));

  std::atomic<size_t> ran{0};
  ParallelOptions options;
  options.pool = &pool;
  options.grain = 1;
  options.cancel = source.token();
  Status s = ParallelFor(
      0, 64,
      [&](size_t) -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      options);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.message(), "caller gave up");
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForInterruptTest, ExpiredDeadlineSkipsAllChunks) {
  ThreadPool pool(4);
  ManualClock clock;
  Deadline deadline = Deadline::After(std::chrono::milliseconds(5), &clock);
  clock.Advance(std::chrono::milliseconds(5));

  std::atomic<size_t> ran{0};
  ParallelOptions options;
  options.pool = &pool;
  options.grain = 1;
  options.deadline = deadline;
  Status s = ParallelFor(
      0, 64,
      [&](size_t) -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      options);
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForInterruptTest, MidRunCancellationShedsWorkOrCompletes) {
  // Chunk 0 (run inline by the caller) cancels the token; chunks the
  // workers had not yet started observe the flag and are skipped. The
  // exact shed count races with the workers, so the invariant is
  // two-sided: either cancellation was observed (Aborted, strictly fewer
  // iterations than submitted) or every chunk had already started (OK,
  // all iterations ran).
  ThreadPool pool(2);
  CancelSource source;
  std::atomic<size_t> ran{0};
  ParallelOptions options;
  options.pool = &pool;
  options.grain = 1;
  options.cancel = source.token();
  const size_t n = 512;
  Status s = ParallelFor(
      0, n,
      [&](size_t i) -> Status {
        if (i == 0) source.Cancel();
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      options);
  if (s.ok()) {
    EXPECT_EQ(ran.load(), n);
  } else {
    EXPECT_TRUE(s.IsAborted());
    EXPECT_LT(ran.load(), n);
  }
}

TEST(ParallelForInterruptTest, ChunkErrorOutranksInterruption) {
  // Index 0 fails *and* the token is cancelled: the deterministic
  // lowest-chunk error must win over the interruption status.
  ThreadPool pool(4);
  CancelSource source;
  ParallelOptions options;
  options.pool = &pool;
  options.grain = 1;
  options.cancel = source.token();
  Status s = ParallelFor(
      0, 64,
      [&](size_t i) -> Status {
        if (i == 0) {
          source.Cancel();
          return Status::Internal("bad index 0");
        }
        return Status::OK();
      },
      options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad index 0");
}

TEST(ParallelForInterruptTest, SingleChunkPathHonorsTheToken) {
  CancelSource source;
  source.Cancel();
  // One chunk (n <= grain): the inline fast path must also check the token.
  ParallelOptions options;
  options.grain = 100;
  options.cancel = source.token();
  std::atomic<size_t> ran{0};
  Status s = ParallelFor(
      0, 4,
      [&](size_t) -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      options);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(ran.load(), 0u);
}

}  // namespace
}  // namespace lakekit
