#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"

namespace lakekit {
namespace {

using std::chrono::milliseconds;

/// A policy whose sleeps are recorded instead of slept.
struct RecordingPolicy {
  explicit RecordingPolicy(RetryOptions options) : policy(options) {
    policy.set_sleep_fn([this](milliseconds d) { sleeps.push_back(d); });
  }
  RetryPolicy policy;
  std::vector<milliseconds> sleeps;
};

TEST(RetryTest, TransientClassificationMatchesStatusHelper) {
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::IoError("flaky fs")));
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::Unavailable("source down")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::NotFound("no such key")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::Aborted("cancelled")));
  // Deadline expiry is permanent by construction: the budget is spent.
  EXPECT_FALSE(
      RetryPolicy::IsTransient(Status::DeadlineExceeded("too slow")));
  // Budget exhaustion is likewise permanent: the same query re-run against
  // the same memory budget just exhausts it again. (Load *shedding* at
  // admission surfaces as the transient kUnavailable instead.)
  EXPECT_FALSE(
      RetryPolicy::IsTransient(Status::ResourceExhausted("over budget")));
  EXPECT_TRUE(IsTransientError(Status::Unavailable("same classification")));
  EXPECT_FALSE(IsTransientError(Status::ResourceExhausted("same split")));
}

TEST(RetryTest, ResourceExhaustedFailsFastWithoutSleeping) {
  RetryOptions options;
  options.max_attempts = 5;
  RecordingPolicy rp(options);
  int calls = 0;
  Status s = rp.policy.Run([&] {
    ++calls;
    return Status::ResourceExhausted("budget refused the build side");
  });
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(rp.sleeps.empty());
}

TEST(RetryTest, PermanentErrorFailsFastWithoutSleeping) {
  RecordingPolicy rp((RetryOptions()));
  int calls = 0;
  Status s = rp.policy.Run([&] {
    ++calls;
    return Status::InvalidArgument("never retry this");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(rp.sleeps.empty());
}

TEST(RetryTest, TransientErrorRetriesUpToMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 4;
  RecordingPolicy rp(options);
  int calls = 0;
  Status s = rp.policy.Run([&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(rp.sleeps.size(), 3u);  // one backoff between consecutive tries
}

TEST(RetryTest, StopsRetryingOnSuccess) {
  RecordingPolicy rp((RetryOptions()));
  int calls = 0;
  Result<int> r = rp.policy.RunResult([&]() -> Result<int> {
    if (++calls < 3) return Status::IoError("transient");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(rp.sleeps.size(), 2u);
}

TEST(RetryTest, JitteredBackoffStaysWithinTheExponentialCap) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff = milliseconds(8);
  options.multiplier = 2.0;
  options.max_backoff = milliseconds(20);
  RecordingPolicy rp(options);
  Status s = rp.policy.Run([] { return Status::Unavailable("down"); });
  EXPECT_TRUE(s.IsUnavailable());
  ASSERT_EQ(rp.sleeps.size(), 7u);
  // Full jitter: sleep k is uniform in [0, min(8 * 2^k, 20)]ms.
  const int64_t caps[] = {8, 16, 20, 20, 20, 20, 20};
  for (size_t k = 0; k < rp.sleeps.size(); ++k) {
    EXPECT_GE(rp.sleeps[k].count(), 0) << "sleep " << k;
    EXPECT_LE(rp.sleeps[k].count(), caps[k]) << "sleep " << k;
  }
}

TEST(RetryTest, ScheduleIsDeterministicPerSeed) {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff = milliseconds(16);
  options.max_backoff = milliseconds(200);
  options.jitter_seed = 20260808;
  RecordingPolicy a(options);
  RecordingPolicy b(options);
  EXPECT_TRUE(
      a.policy.Run([] { return Status::Unavailable("x"); }).IsUnavailable());
  EXPECT_TRUE(
      b.policy.Run([] { return Status::Unavailable("x"); }).IsUnavailable());
  EXPECT_EQ(a.sleeps, b.sleeps);
}

TEST(RetryTest, ExpiredDeadlineStopsRetryingWithoutSleeping) {
  ManualClock clock;
  Deadline deadline = Deadline::After(milliseconds(10), &clock);
  clock.Advance(milliseconds(10));

  RetryOptions options;
  options.max_attempts = 5;
  RecordingPolicy rp(options);
  int calls = 0;
  Status s = rp.policy.Run(
      [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      deadline);
  // The attempt itself still runs (the deadline gates the *sleeps*), but
  // the policy returns the last status instead of sleeping past expiry.
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(rp.sleeps.empty());
}

TEST(RetryTest, BackoffSleepsAreCappedAtTheRemainingBudget) {
  ManualClock clock;
  Deadline deadline = Deadline::After(milliseconds(5), &clock);

  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff = milliseconds(100);
  options.max_backoff = milliseconds(100);
  RecordingPolicy rp(options);
  // The recorded sleeps also advance the clock, like real sleeping would.
  rp.policy.set_sleep_fn([&](milliseconds d) {
    rp.sleeps.push_back(d);
    clock.Advance(d);
  });
  Status s = rp.policy.Run(
      [&] { return Status::Unavailable("down"); }, deadline);
  EXPECT_TRUE(s.IsUnavailable());
  // Every sleep was clamped to the remaining budget, so the whole retry
  // schedule cannot cost more than the 5ms the caller granted.
  milliseconds total(0);
  for (milliseconds d : rp.sleeps) {
    EXPECT_LE(d.count(), 5);
    total += d;
  }
  EXPECT_LE(total.count(), 5);
}

TEST(RetryTest, RunResultPropagatesTheValueAndTheError) {
  RetryOptions options;
  options.max_attempts = 2;
  RecordingPolicy rp(options);
  Result<std::vector<int>> err =
      rp.policy.RunResult([]() -> Result<std::vector<int>> {
        return Status::Corruption("permanent");
      });
  EXPECT_TRUE(err.status().code() == StatusCode::kCorruption);
  Result<std::vector<int>> ok =
      rp.policy.RunResult([]() -> Result<std::vector<int>> {
        return std::vector<int>{1, 2, 3};
      });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);
}

}  // namespace
}  // namespace lakekit
