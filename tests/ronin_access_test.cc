#include <gtest/gtest.h>

#include "catalog/access_control.h"
#include "discovery/josie.h"
#include "organize/org_dag.h"
#include "organize/ronin.h"
#include "workload/generator.h"

#include "common/status.h"

namespace lakekit {
namespace {

// ---------------------------------------------------------------- RONIN

class RoninTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A unionable lake (topic groups for navigation/keyword signals) plus
    // one joinable pair bridging two tables.
    workload::UnionableLakeOptions options;
    options.num_groups = 3;
    options.tables_per_group = 3;
    options.rows_per_table = 40;
    lake_ = new workload::UnionableLake(workload::MakeUnionableLake(options));
    corpus_ = new discovery::Corpus();
    for (const auto& [domain, terms] : lake_->domains) {
      corpus_->RegisterSemanticDomain(domain, terms);
    }
    for (const auto& t : lake_->tables) LAKEKIT_CHECK_OK(corpus_->AddTable(t));
    // Bridge table: shares values with union_table0's first column but has
    // no topical/keyword relation to the query.
    {
      table::Table bridge(
          "bridge",
          table::Schema({{"linkcol", table::DataType::kString, true}}));
      const auto& terms = lake_->domains.at("domain_g0c0");
      for (size_t i = 0; i < 30; ++i) {
        LAKEKIT_CHECK_OK(bridge.AppendRow({table::Value(terms[i % terms.size()])}));
      }
      LAKEKIT_CHECK_OK(corpus_->AddTable(std::move(bridge)));
    }
    auto org = organize::Organization::Build(corpus_);
    org_ = new organize::Organization(std::move(*org));
    josie_ = new discovery::JosieFinder(corpus_);
    josie_->Build();
  }
  static void TearDownTestSuite() {
    delete josie_;
    delete org_;
    delete corpus_;
    delete lake_;
  }

  static workload::UnionableLake* lake_;
  static discovery::Corpus* corpus_;
  static organize::Organization* org_;
  static discovery::JosieFinder* josie_;
};

workload::UnionableLake* RoninTest::lake_ = nullptr;
discovery::Corpus* RoninTest::corpus_ = nullptr;
organize::Organization* RoninTest::org_ = nullptr;
discovery::JosieFinder* RoninTest::josie_ = nullptr;

TEST_F(RoninTest, KeywordScoreMatchesValuesAndNames) {
  organize::RoninExplorer ronin(corpus_, org_, josie_);
  // Terms drawn from group 0's c0 domain hit table 0's values.
  std::vector<std::string> query = lake_->domains.at("domain_g0c0");
  query.resize(4);
  EXPECT_GT(ronin.KeywordScore(0, query), 0.9);
  // Group 2's tables (index 6 = group 2) share the generic "domain"/"tN"
  // tokens but miss the group-discriminating "g0c0" token, so they score
  // strictly lower.
  EXPECT_LT(ronin.KeywordScore(6, query), ronin.KeywordScore(0, query));
  EXPECT_DOUBLE_EQ(ronin.KeywordScore(0, {}), 0.0);
}

TEST_F(RoninTest, ExploreRanksQueriedGroupFirst) {
  organize::RoninExplorer ronin(corpus_, org_, josie_);
  std::vector<std::string> query = lake_->domains.at("domain_g1c0");
  query.resize(6);
  auto hits = ronin.Explore(query, 3);
  ASSERT_FALSE(hits.empty());
  // The top hits are group-1 tables (indexes 3..5).
  EXPECT_EQ(lake_->group_of[hits[0].table_idx], 1u);
  EXPECT_GT(hits[0].keyword_score, 0.5);
}

TEST_F(RoninTest, JoinExpansionSurfacesBridgeTable) {
  organize::RoninExplorer ronin(corpus_, org_, josie_);
  std::vector<std::string> query = lake_->domains.at("domain_g0c0");
  query.resize(6);
  auto hits = ronin.Explore(query, 6);
  bool bridge_found = false;
  for (const auto& hit : hits) {
    if (hit.table_name == "bridge") {
      bridge_found = true;
      EXPECT_GT(hit.join_score, 0.0);
    }
  }
  EXPECT_TRUE(bridge_found);
}

// ---------------------------------------------------------- access ctl

using catalog::AccessControl;
using catalog::Privilege;

TEST(AccessControlTest, UsersRolesGrants) {
  AccessControl ac;
  ASSERT_TRUE(ac.CreateUser("ada").ok());
  EXPECT_TRUE(ac.CreateUser("ada").IsAlreadyExists());
  ASSERT_TRUE(ac.CreateRole("analyst").ok());
  ASSERT_TRUE(ac.AssignRole("ada", "analyst").ok());
  EXPECT_TRUE(ac.AssignRole("ghost", "analyst").IsNotFound());
  EXPECT_TRUE(ac.AssignRole("ada", "ghost_role").IsNotFound());
  ASSERT_TRUE(ac.Grant("analyst", "orders", Privilege::kRead).ok());

  EXPECT_TRUE(ac.IsAllowed("ada", "orders", Privilege::kRead));
  EXPECT_FALSE(ac.IsAllowed("ada", "orders", Privilege::kWrite));
  EXPECT_FALSE(ac.IsAllowed("ada", "salaries", Privilege::kRead));
  EXPECT_FALSE(ac.IsAllowed("unknown", "orders", Privilege::kRead));
  EXPECT_EQ(ac.RolesOf("ada"), (std::vector<std::string>{"analyst"}));
}

TEST(AccessControlTest, WildcardGrant) {
  AccessControl ac;
  ASSERT_TRUE(ac.CreateUser("root").ok());
  ASSERT_TRUE(ac.CreateRole("admin").ok());
  ASSERT_TRUE(ac.AssignRole("root", "admin").ok());
  ASSERT_TRUE(ac.Grant("admin", "*", Privilege::kWrite).ok());
  EXPECT_TRUE(ac.IsAllowed("root", "anything", Privilege::kWrite));
  EXPECT_FALSE(ac.IsAllowed("root", "anything", Privilege::kRead));
}

TEST(AccessControlTest, RevokeRemovesAccess) {
  AccessControl ac;
  ASSERT_TRUE(ac.CreateUser("u").ok());
  ASSERT_TRUE(ac.CreateRole("r").ok());
  ASSERT_TRUE(ac.AssignRole("u", "r").ok());
  ASSERT_TRUE(ac.Grant("r", "d", Privilege::kRead).ok());
  EXPECT_TRUE(ac.IsAllowed("u", "d", Privilege::kRead));
  ASSERT_TRUE(ac.Revoke("r", "d", Privilege::kRead).ok());
  EXPECT_FALSE(ac.IsAllowed("u", "d", Privilege::kRead));
  EXPECT_TRUE(ac.Revoke("r", "d", Privilege::kRead).IsNotFound());
}

TEST(AccessControlTest, AuditAndUsageTracking) {
  AccessControl ac;
  ASSERT_TRUE(ac.CreateUser("ada").ok());
  ASSERT_TRUE(ac.CreateRole("analyst").ok());
  ASSERT_TRUE(ac.AssignRole("ada", "analyst").ok());
  ASSERT_TRUE(ac.Grant("analyst", "orders", Privilege::kRead).ok());

  EXPECT_TRUE(ac.Check("ada", "orders", Privilege::kRead));
  EXPECT_TRUE(ac.Check("ada", "orders", Privilege::kRead));
  EXPECT_FALSE(ac.Check("ada", "salaries", Privilege::kRead));  // denied
  EXPECT_FALSE(ac.Check("eve", "orders", Privilege::kRead));    // no user

  ASSERT_EQ(ac.audit_log().size(), 4u);
  EXPECT_TRUE(ac.audit_log()[0].allowed);
  EXPECT_FALSE(ac.audit_log()[2].allowed);
  // Logical timestamps are strictly increasing.
  EXPECT_LT(ac.audit_log()[0].at, ac.audit_log()[3].at);

  auto usage = ac.UsageCounts();
  EXPECT_EQ(usage["orders"], 2u);
  EXPECT_EQ(usage.count("salaries"), 0u);  // denied accesses not usage

  auto by_ada = ac.AccessesBy("ada");
  EXPECT_EQ(by_ada.size(), 3u);
  EXPECT_EQ(ac.AccessesBy("eve").size(), 1u);
}

TEST(AccessControlTest, MultipleRolesUnion) {
  AccessControl ac;
  ASSERT_TRUE(ac.CreateUser("u").ok());
  ASSERT_TRUE(ac.CreateRole("reader").ok());
  ASSERT_TRUE(ac.CreateRole("writer").ok());
  ASSERT_TRUE(ac.AssignRole("u", "reader").ok());
  ASSERT_TRUE(ac.AssignRole("u", "writer").ok());
  ASSERT_TRUE(ac.Grant("reader", "d", Privilege::kRead).ok());
  ASSERT_TRUE(ac.Grant("writer", "d", Privilege::kWrite).ok());
  EXPECT_TRUE(ac.IsAllowed("u", "d", Privilege::kRead));
  EXPECT_TRUE(ac.IsAllowed("u", "d", Privilege::kWrite));
  EXPECT_FALSE(ac.IsAllowed("u", "d", Privilege::kGrant));
}

}  // namespace
}  // namespace lakekit
