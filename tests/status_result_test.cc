// Exhaustive coverage for Status/Result and the error-propagation macros,
// added alongside the [[nodiscard]] sweep (see DESIGN.md "Error handling &
// analysis"). The basics live in common_test.cc; this file covers the
// contract edges: every StatusCode, equality, macro hygiene (shadowing,
// nesting), LAKEKIT_CHECK_OK, and the nodiscard compile-fail reference.

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace lakekit {
namespace {

// Every non-OK code, for exhaustive loops below.
const std::vector<StatusCode> kErrorCodes = {
    StatusCode::kInvalidArgument, StatusCode::kNotFound,
    StatusCode::kAlreadyExists,   StatusCode::kIoError,
    StatusCode::kCorruption,      StatusCode::kNotSupported,
    StatusCode::kFailedPrecondition, StatusCode::kAborted,
    StatusCode::kOutOfRange,      StatusCode::kInternal,
    StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
    StatusCode::kResourceExhausted,
};

TEST(StatusCodeNameTest, EveryCodeHasAStableUniqueName) {
  std::vector<std::string> seen;
  seen.emplace_back(StatusCodeName(StatusCode::kOk));
  EXPECT_EQ(seen.back(), "OK");
  for (StatusCode code : kErrorCodes) {
    std::string name(StatusCodeName(code));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "Unknown") << "code " << static_cast<int>(code);
    for (const std::string& prior : seen) EXPECT_NE(name, prior);
    seen.push_back(std::move(name));
  }
}

TEST(StatusTest, ToStringForEveryCode) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  for (StatusCode code : kErrorCodes) {
    Status s(code, "ctx");
    std::string expected = std::string(StatusCodeName(code)) + ": ctx";
    EXPECT_EQ(s.ToString(), expected);
  }
}

TEST(StatusTest, FactoryHelpersRoundTripTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("m").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("m").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("m").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Aborted("m").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("m").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Aborted("x"));
}

TEST(StatusTest, PredicatesMatchTheirCodeOnly) {
  Status nf = Status::NotFound("m");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.IsAlreadyExists());
  EXPECT_FALSE(nf.IsAborted());
  EXPECT_FALSE(nf.IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted("m").IsAborted());
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  Status re = Status::ResourceExhausted("m");
  EXPECT_TRUE(re.IsResourceExhausted());
  EXPECT_FALSE(re.IsUnavailable());
  EXPECT_FALSE(Status::Unavailable("m").IsResourceExhausted());
}

// The overload-protection split (see query/admission.h): shedding at the
// front door is kUnavailable — transient, the queue drains — while a budget
// refusal is kResourceExhausted — permanent, an immediate retry re-exhausts
// the same budget.
TEST(StatusTest, TransientClassificationSplitsShedFromExhausted) {
  EXPECT_TRUE(IsTransientError(Status::Unavailable("shed: queue full")));
  EXPECT_FALSE(
      IsTransientError(Status::ResourceExhausted("budget refused 1MiB")));
  EXPECT_FALSE(IsTransientError(Status::DeadlineExceeded("spent")));
}

// ------------------------------------------------ macro propagation paths

Status ReturnIfErrorPassThrough(const Status& first, const Status& second) {
  LAKEKIT_RETURN_IF_ERROR(first);
  LAKEKIT_RETURN_IF_ERROR(second);
  return Status::OK();
}

TEST(ReturnIfErrorTest, OkFallsThroughErrorShortCircuits) {
  EXPECT_TRUE(ReturnIfErrorPassThrough(Status::OK(), Status::OK()).ok());
  EXPECT_EQ(ReturnIfErrorPassThrough(Status::Aborted("a"), Status::OK()),
            Status::Aborted("a"));
  EXPECT_EQ(ReturnIfErrorPassThrough(Status::OK(), Status::IoError("b")),
            Status::IoError("b"));
}

// The macro's internal status must not shadow or capture caller locals with
// similar names; `expr` may itself mention `_lakekit_status`.
Status ReturnIfErrorShadowProbe() {
  Status _lakekit_status = Status::Corruption("caller-owned");
  LAKEKIT_RETURN_IF_ERROR(Status::OK());
  LAKEKIT_RETURN_IF_ERROR(_lakekit_status.ok() ? Status::OK()
                                               : Status::Aborted("probe"));
  return Status::NotFound("fell through");
}

TEST(ReturnIfErrorTest, DoesNotShadowCallerLocals) {
  EXPECT_EQ(ReturnIfErrorShadowProbe(), Status::Aborted("probe"));
}

// Two expansions in one scope (and an if-else without braces) must compile
// and behave — the do-while wrapper plus __COUNTER__ names guarantee it.
Status ReturnIfErrorNestedBranches(bool which) {
  if (which)
    LAKEKIT_RETURN_IF_ERROR(Status::OutOfRange("left"));
  else
    LAKEKIT_RETURN_IF_ERROR(Status::Internal("right"));
  return Status::OK();
}

TEST(ReturnIfErrorTest, ExpandsInBracelessBranches) {
  EXPECT_EQ(ReturnIfErrorNestedBranches(true), Status::OutOfRange("left"));
  EXPECT_EQ(ReturnIfErrorNestedBranches(false), Status::Internal("right"));
}

Result<int> PositiveOrError(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> SumViaAssignOrReturn(int a, int b) {
  LAKEKIT_ASSIGN_OR_RETURN(int va, PositiveOrError(a));
  LAKEKIT_ASSIGN_OR_RETURN(int vb, PositiveOrError(b));
  return va + vb;
}

TEST(AssignOrReturnTest, BindsValueAndPropagatesError) {
  Result<int> ok = SumViaAssignOrReturn(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = SumViaAssignOrReturn(2, -1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status(), Status::InvalidArgument("not positive"));
}

// Move-only payloads must flow through the macro's std::move without copies.
Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return std::make_unique<int>(x);
}

Result<int> UnboxViaAssignOrReturn(int x) {
  LAKEKIT_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  return *box;
}

TEST(AssignOrReturnTest, SupportsMoveOnlyTypes) {
  Result<int> ok = UnboxViaAssignOrReturn(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(UnboxViaAssignOrReturn(-1).status().code() ==
              StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  EXPECT_EQ(PositiveOrError(4).value_or(-1), 4);
  EXPECT_EQ(PositiveOrError(0).value_or(-1), -1);
}

TEST(CheckOkTest, OkStatusAndResultPassThrough) {
  LAKEKIT_CHECK_OK(Status::OK());
  LAKEKIT_CHECK_OK(PositiveOrError(1));
}

TEST(CheckOkDeathTest, NonOkAbortsWithContext) {
  EXPECT_DEATH(LAKEKIT_CHECK_OK(Status::IoError("disk gone")),
               "LAKEKIT_CHECK_OK.*disk gone");
}

// ------------------------------------------------ nodiscard compile-fail
//
// `Status` and `Result<T>` are class-level [[nodiscard]], and the build runs
// with -Werror=unused-result, so discarding either is a hard compile error.
// There is no portable way to assert "this does not compile" from within a
// test, so this block is the maintained reference: flip the `#if 0` to 1 and
// the tree must fail to build with
//   error: ignoring returned value of type 'lakekit::Status' ...
#if 0
void DiscardedStatusMustNotCompile() {
  Status::Internal("dropped");          // error: nodiscard
  PositiveOrError(1);                   // error: nodiscard
}
#endif

// What the attribute itself guarantees is at least statically checkable:
static_assert(!std::is_convertible_v<Status, void>,
              "Status is a value type, not implicitly void-convertible");

}  // namespace
}  // namespace lakekit
