// Concurrency coverage for the thread-safe KvStore: N writer threads × M
// reader threads over the group-commit write path, WriteBatch atomicity
// under contention, and flush/compaction racing readers. Runs in the TSan
// CI preset; the assertions here are the functional half, the race detector
// is the other half.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "storage/kv_store.h"

namespace lakekit::storage {
namespace {

namespace fs = std::filesystem;

class KvStoreConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lakekit_conc_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

/// Small thresholds so the workload drives flushes and compactions while
/// readers and other writers are active.
KvStoreOptions SmallOptions() {
  KvStoreOptions options;
  options.memtable_flush_bytes = 2048;
  options.compaction_trigger_runs = 3;
  return options;
}

TEST_F(KvStoreConcurrentTest, WritersAndReadersDontCorrupt) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kKeysPerWriter = 150;
  auto store = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(store.ok());
  KvStore* kv = store->get();

  std::atomic<bool> writers_done{false};
  std::vector<Status> writer_status(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([kv, t, &writer_status] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        Status s = kv->Put("w" + std::to_string(t) + "-k" + std::to_string(i),
                           "v" + std::to_string(t) + "-" + std::to_string(i));
        if (!s.ok()) {
          writer_status[t] = s;
          return;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([kv, r, &writers_done] {
      // Readers hammer Get and Scan on keys that may or may not exist yet;
      // any value observed must be one some writer actually wrote.
      uint64_t probe = static_cast<uint64_t>(r);
      while (!writers_done.load(std::memory_order_acquire)) {
        const int t = static_cast<int>(probe % kWriters);
        const int i = static_cast<int>(probe % kKeysPerWriter);
        auto got = kv->Get("w" + std::to_string(t) + "-k" + std::to_string(i));
        if (got.ok()) {
          EXPECT_EQ(*got,
                    "v" + std::to_string(t) + "-" + std::to_string(i));
        }
        auto scanned = kv->Scan("w1-", "w2-");
        EXPECT_TRUE(scanned.ok());
        probe += 7;
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  for (int t = 0; t < kWriters; ++t) {
    ASSERT_TRUE(writer_status[t].ok()) << writer_status[t].message();
  }
  // Every acknowledged write must be visible...
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      auto got = kv->Get("w" + std::to_string(t) + "-k" + std::to_string(i));
      ASSERT_TRUE(got.ok()) << "lost w" << t << "-k" << i;
      EXPECT_EQ(*got, "v" + std::to_string(t) + "-" + std::to_string(i));
    }
  }
  // ... and must replay from the group-committed WAL + runs after reopen.
  store->reset();
  auto reopened = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(reopened.ok());
  auto all = (*reopened)->Scan();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<size_t>(kWriters * kKeysPerWriter));
}

TEST_F(KvStoreConcurrentTest, ConcurrentWriteBatchesAllLand) {
  constexpr int kThreads = 6;
  constexpr int kBatchesPerThread = 20;
  constexpr int kOpsPerBatch = 8;
  auto store = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(store.ok());
  KvStore* kv = store->get();

  // Drive the committers through the shared ThreadPool (grain=1: one task
  // per writer) — the same execution layer the parallel ingest paths use.
  Status status = ParallelFor(
      0, kThreads,
      [&](size_t t) -> Status {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          WriteBatch batch;
          for (int i = 0; i < kOpsPerBatch; ++i) {
            batch.Put("t" + std::to_string(t) + "-b" + std::to_string(b) +
                          "-k" + std::to_string(i),
                      "payload" + std::to_string(i));
          }
          LAKEKIT_RETURN_IF_ERROR(kv->Write(batch));
        }
        return Status::OK();
      },
      {.grain = 1});
  ASSERT_TRUE(status.ok()) << status.message();

  auto all = kv->Scan();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(),
            static_cast<size_t>(kThreads * kBatchesPerThread * kOpsPerBatch));
}

TEST_F(KvStoreConcurrentTest, DeletesRacingPutsConverge) {
  constexpr int kKeys = 200;
  auto store = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(store.ok());
  KvStore* kv = store->get();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(kv->Put("k" + std::to_string(i), "seed").ok());
  }
  // One thread overwrites even keys, one deletes odd keys, one compacts.
  std::thread putter([kv] {
    for (int i = 0; i < kKeys; i += 2) {
      EXPECT_TRUE(kv->Put("k" + std::to_string(i), "final").ok());
    }
  });
  std::thread deleter([kv] {
    for (int i = 1; i < kKeys; i += 2) {
      EXPECT_TRUE(kv->Delete("k" + std::to_string(i)).ok());
    }
  });
  std::thread maintainer([kv] {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(kv->Flush().ok());
      EXPECT_TRUE(kv->Compact().ok());
    }
  });
  putter.join();
  deleter.join();
  maintainer.join();

  for (int i = 0; i < kKeys; ++i) {
    auto got = kv->Get("k" + std::to_string(i));
    if (i % 2 == 0) {
      ASSERT_TRUE(got.ok()) << "k" << i;
      EXPECT_EQ(*got, "final");
    } else {
      EXPECT_FALSE(got.ok()) << "deleted k" << i << " still visible";
    }
  }
  // Survives recovery too.
  store->reset();
  auto reopened = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Scan()->size(), static_cast<size_t>(kKeys / 2));
}

TEST_F(KvStoreConcurrentTest, ScanPrefixStableUnderConcurrentCompaction) {
  auto store = KvStore::Open(Path("kv"), SmallOptions());
  ASSERT_TRUE(store.ok());
  KvStore* kv = store->get();
  constexpr int kStable = 100;
  for (int i = 0; i < kStable; ++i) {
    ASSERT_TRUE(kv->Put("stable/" + std::to_string(i), "x").ok());
  }
  std::atomic<bool> done{false};
  std::thread churn([kv, &done] {
    int i = 0;
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(kv->Put("churn/" + std::to_string(i++ % 50), "y").ok());
      if (i % 25 == 0) EXPECT_TRUE(kv->Compact().ok());
    }
  });
  for (int round = 0; round < 50; ++round) {
    auto scanned = kv->ScanPrefix("stable/");
    ASSERT_TRUE(scanned.ok());
    // The stable keyspace never changes: every scan sees exactly it.
    EXPECT_EQ(scanned->size(), static_cast<size_t>(kStable));
  }
  done.store(true, std::memory_order_release);
  churn.join();
}

}  // namespace
}  // namespace lakekit::storage
