#ifndef LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_
#define LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/kv_store.h"

namespace lakekit::storage::crash_harness {

/// One step of a randomized KvStore workload.
struct WorkloadOp {
  enum Kind { kPut, kDelete, kFlush, kCompact };
  Kind kind = kPut;
  std::string key;
  std::string value;
};

/// The durability contract, as data: what the store has acknowledged
/// (`acked`, nullopt meaning "deleted"), plus the at-most-one operation that
/// was in flight when the fault hit. POSIX lets the in-flight op land either
/// way; everything acknowledged must survive a crash exactly.
struct CrashModel {
  std::map<std::string, std::optional<std::string>> acked;
  std::optional<std::string> inflight_key;
  /// Intended post-state of the in-flight op (nullopt = delete).
  std::optional<std::string> inflight_value;
  bool has_inflight = false;
};

/// Small key space so deletes and overwrites actually collide.
inline std::string WorkloadKey(uint64_t i) {
  return "key" + std::to_string(i % 12);
}

/// Deterministic mixed workload: ~60% puts, ~20% deletes, plus explicit
/// flushes and compactions so run files and merges sit in the crash window.
inline std::vector<WorkloadOp> MakeWorkload(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<WorkloadOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WorkloadOp op;
    uint64_t roll = rng.Below(10);
    if (roll < 6) {
      op.kind = WorkloadOp::kPut;
      op.key = WorkloadKey(rng.Below(12));
      op.value = "v" + std::to_string(rng.Below(1000)) +
                 std::string(rng.Below(40), 'x');
    } else if (roll < 8) {
      op.kind = WorkloadOp::kDelete;
      op.key = WorkloadKey(rng.Below(12));
    } else if (roll < 9) {
      op.kind = WorkloadOp::kFlush;
    } else {
      op.kind = WorkloadOp::kCompact;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Applies `ops` to `store`, recording acknowledgements in `model`. Stops at
/// the first failed op (with injected faults that is where a real process
/// would die); a failed Put/Delete becomes the model's in-flight op, while a
/// failed Flush/Compact changes no logical state at all.
inline void RunWorkload(KvStore* store, const std::vector<WorkloadOp>& ops,
                        CrashModel* model) {
  for (const WorkloadOp& op : ops) {
    Status status = Status::OK();
    switch (op.kind) {
      case WorkloadOp::kPut:
        status = store->Put(op.key, op.value);
        if (status.ok()) {
          model->acked[op.key] = op.value;
        } else {
          model->inflight_key = op.key;
          model->inflight_value = op.value;
          model->has_inflight = true;
        }
        break;
      case WorkloadOp::kDelete:
        status = store->Delete(op.key);
        if (status.ok()) {
          model->acked[op.key] = std::nullopt;
        } else {
          model->inflight_key = op.key;
          model->inflight_value = std::nullopt;
          model->has_inflight = true;
        }
        break;
      case WorkloadOp::kFlush:
        status = store->Flush();
        break;
      case WorkloadOp::kCompact:
        status = store->Compact();
        break;
    }
    if (!status.ok()) return;
  }
}

/// Checks a reopened store against the model:
///  - every acknowledged write/delete (except the in-flight key) must be
///    reflected exactly — acked values survive, deleted keys stay dead;
///  - the in-flight key may hold its old or its intended new state, nothing
///    else;
///  - Scan must return no key outside the model (unacknowledged writes
///    vanish cleanly, deleted keys never resurrect).
inline ::testing::AssertionResult CheckModel(const KvStore& store,
                                             const CrashModel& model) {
  for (const auto& [key, value] : model.acked) {
    if (model.has_inflight && key == *model.inflight_key) continue;
    Result<std::string> got = store.Get(key);
    if (value) {
      if (!got.ok()) {
        return ::testing::AssertionFailure()
               << "acked key '" << key << "' lost: " << got.status().message();
      }
      if (*got != *value) {
        return ::testing::AssertionFailure()
               << "acked key '" << key << "' has wrong value '" << *got
               << "' (want '" << *value << "')";
      }
    } else if (got.ok()) {
      return ::testing::AssertionFailure()
             << "deleted key '" << key << "' resurrected with value '" << *got
             << "'";
    }
  }
  if (model.has_inflight) {
    const std::string& key = *model.inflight_key;
    auto it = model.acked.find(key);
    std::optional<std::string> old_state =
        it == model.acked.end() ? std::nullopt : it->second;
    Result<std::string> got = store.Get(key);
    std::optional<std::string> observed =
        got.ok() ? std::optional<std::string>(*got) : std::nullopt;
    if (observed != old_state && observed != model.inflight_value) {
      return ::testing::AssertionFailure()
             << "in-flight key '" << key << "' in illegal state '"
             << (observed ? *observed : "<absent>") << "' (legal: old='"
             << (old_state ? *old_state : "<absent>") << "', new='"
             << (model.inflight_value ? *model.inflight_value : "<absent>")
             << "')";
    }
  }
  Result<std::vector<std::pair<std::string, std::string>>> all = store.Scan();
  if (!all.ok()) {
    return ::testing::AssertionFailure()
           << "scan failed after recovery: " << all.status().message();
  }
  for (const auto& [key, value] : *all) {
    if (model.has_inflight && key == *model.inflight_key) continue;
    auto it = model.acked.find(key);
    if (it == model.acked.end() || !it->second) {
      return ::testing::AssertionFailure()
             << "unexpected key '" << key
             << "' visible after recovery (never acknowledged or deleted)";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace lakekit::storage::crash_harness

#endif  // LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_
