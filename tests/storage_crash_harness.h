#ifndef LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_
#define LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/kv_store.h"

namespace lakekit::storage::crash_harness {

/// One step of a randomized KvStore workload.
struct WorkloadOp {
  enum Kind { kPut, kDelete, kFlush, kCompact, kBatch };
  Kind kind = kPut;
  std::string key;
  std::string value;
  /// For kBatch: the ops committed through one WriteBatch (nullopt value ==
  /// delete), in order.
  std::vector<std::pair<std::string, std::optional<std::string>>> batch;
};

/// The durability contract, as data: what the store has acknowledged
/// (`acked`, nullopt meaning "deleted"), plus the records of the at-most-one
/// commit that was in flight when the fault hit, in WAL order. A plain
/// Put/Delete is an in-flight commit of one record; a WriteBatch is several.
/// POSIX + per-record CRC framing let any *prefix* of the in-flight records
/// land (each record individually old-or-new, and record i+1 never lands
/// without record i); everything acknowledged must survive a crash exactly.
struct CrashModel {
  std::map<std::string, std::optional<std::string>> acked;
  std::vector<std::pair<std::string, std::optional<std::string>>> inflight;

  bool has_inflight() const { return !inflight.empty(); }
};

/// Small key space so deletes and overwrites actually collide.
inline std::string WorkloadKey(uint64_t i) {
  return "key" + std::to_string(i % 12);
}

/// Deterministic mixed workload: ~50% puts, ~20% deletes, ~10% group-commit
/// batches, plus explicit flushes and compactions so run files and merges
/// sit in the crash window.
inline std::vector<WorkloadOp> MakeWorkload(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<WorkloadOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WorkloadOp op;
    uint64_t roll = rng.Below(10);
    if (roll < 5) {
      op.kind = WorkloadOp::kPut;
      op.key = WorkloadKey(rng.Below(12));
      op.value = "v" + std::to_string(rng.Below(1000)) +
                 std::string(rng.Below(40), 'x');
    } else if (roll < 7) {
      op.kind = WorkloadOp::kDelete;
      op.key = WorkloadKey(rng.Below(12));
    } else if (roll < 8) {
      op.kind = WorkloadOp::kBatch;
      const size_t batch_len = 2 + rng.Below(4);
      for (size_t j = 0; j < batch_len; ++j) {
        if (rng.Below(4) == 0) {
          op.batch.emplace_back(WorkloadKey(rng.Below(12)), std::nullopt);
        } else {
          op.batch.emplace_back(
              WorkloadKey(rng.Below(12)),
              "b" + std::to_string(rng.Below(1000)) +
                  std::string(rng.Below(20), 'y'));
        }
      }
    } else if (roll < 9) {
      op.kind = WorkloadOp::kFlush;
    } else {
      op.kind = WorkloadOp::kCompact;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Applies `ops` to `store`, recording acknowledgements in `model`. Stops at
/// the first failed op (with injected faults that is where a real process
/// would die); a failed Put/Delete/Write becomes the model's in-flight
/// commit, while a failed Flush/Compact changes no logical state at all.
inline void RunWorkload(KvStore* store, const std::vector<WorkloadOp>& ops,
                        CrashModel* model) {
  for (const WorkloadOp& op : ops) {
    Status status = Status::OK();
    switch (op.kind) {
      case WorkloadOp::kPut:
        status = store->Put(op.key, op.value);
        if (status.ok()) {
          model->acked[op.key] = op.value;
        } else {
          model->inflight.emplace_back(op.key, op.value);
        }
        break;
      case WorkloadOp::kDelete:
        status = store->Delete(op.key);
        if (status.ok()) {
          model->acked[op.key] = std::nullopt;
        } else {
          model->inflight.emplace_back(op.key, std::nullopt);
        }
        break;
      case WorkloadOp::kBatch: {
        WriteBatch batch;
        for (const auto& [key, value] : op.batch) {
          if (value) {
            batch.Put(key, *value);
          } else {
            batch.Delete(key);
          }
        }
        status = store->Write(batch);
        if (status.ok()) {
          for (const auto& [key, value] : op.batch) {
            model->acked[key] = value;
          }
        } else {
          model->inflight = op.batch;
        }
        break;
      }
      case WorkloadOp::kFlush:
        status = store->Flush();
        break;
      case WorkloadOp::kCompact:
        status = store->Compact();
        break;
    }
    if (!status.ok()) return;
  }
}

/// Checks a reopened store against the model:
///  - every acknowledged write/delete of a key the in-flight commit does not
///    touch must be reflected exactly — acked values survive, deleted keys
///    stay dead;
///  - the keys of the in-flight commit must together match the state after
///    applying some *prefix* of its records on top of the acked state
///    (prefix length 0 = none landed, full length = all landed; a plain
///    Put/Delete in flight is the classic old-or-new special case, and a
///    torn record or an out-of-order landing is illegal at any length);
///  - Scan must return no key outside the model (unacknowledged writes
///    vanish cleanly, deleted keys never resurrect).
inline ::testing::AssertionResult CheckModel(const KvStore& store,
                                             const CrashModel& model) {
  std::set<std::string> inflight_keys;
  for (const auto& [key, value] : model.inflight) inflight_keys.insert(key);

  for (const auto& [key, value] : model.acked) {
    if (inflight_keys.count(key) != 0) continue;
    Result<std::string> got = store.Get(key);
    if (value) {
      if (!got.ok()) {
        return ::testing::AssertionFailure()
               << "acked key '" << key << "' lost: " << got.status().message();
      }
      if (*got != *value) {
        return ::testing::AssertionFailure()
               << "acked key '" << key << "' has wrong value '" << *got
               << "' (want '" << *value << "')";
      }
    } else if (got.ok()) {
      return ::testing::AssertionFailure()
             << "deleted key '" << key << "' resurrected with value '" << *got
             << "'";
    }
  }
  if (model.has_inflight()) {
    // Observe the store's state on every key the in-flight commit touches.
    std::map<std::string, std::optional<std::string>> observed;
    for (const std::string& key : inflight_keys) {
      Result<std::string> got = store.Get(key);
      observed[key] =
          got.ok() ? std::optional<std::string>(*got) : std::nullopt;
    }
    // It must equal the projection of acked + some prefix of the records.
    bool matched = false;
    for (size_t prefix = 0; prefix <= model.inflight.size() && !matched;
         ++prefix) {
      std::map<std::string, std::optional<std::string>> expected;
      for (const std::string& key : inflight_keys) {
        auto it = model.acked.find(key);
        expected[key] = it == model.acked.end() ? std::nullopt : it->second;
      }
      for (size_t i = 0; i < prefix; ++i) {
        expected[model.inflight[i].first] = model.inflight[i].second;
      }
      matched = (observed == expected);
    }
    if (!matched) {
      std::string got;
      for (const auto& [key, value] : observed) {
        got += " " + key + "=" + (value ? *value : "<absent>");
      }
      return ::testing::AssertionFailure()
             << "in-flight commit of " << model.inflight.size()
             << " record(s) left an illegal state (no record prefix "
                "matches):"
             << got;
    }
  }
  Result<std::vector<std::pair<std::string, std::string>>> all = store.Scan();
  if (!all.ok()) {
    return ::testing::AssertionFailure()
           << "scan failed after recovery: " << all.status().message();
  }
  for (const auto& [key, value] : *all) {
    if (inflight_keys.count(key) != 0) continue;
    auto it = model.acked.find(key);
    if (it == model.acked.end() || !it->second) {
      return ::testing::AssertionFailure()
             << "unexpected key '" << key
             << "' visible after recovery (never acknowledged or deleted)";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace lakekit::storage::crash_harness

#endif  // LAKEKIT_TESTS_STORAGE_CRASH_HARNESS_H_
