#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/fault_injecting_fs.h"
#include "storage/kv_store.h"
#include "storage/object_store.h"
#include "storage/polystore.h"
#include "storage_crash_harness.h"

namespace lakekit::storage {
namespace {

using crash_harness::CheckModel;
using crash_harness::CrashModel;
using crash_harness::MakeWorkload;
using crash_harness::RunWorkload;
using crash_harness::WorkloadOp;

/// Small thresholds so short workloads exercise flush and compaction.
KvStoreOptions SmallStoreOptions() {
  KvStoreOptions options;
  options.memtable_flush_bytes = 256;
  options.compaction_trigger_runs = 3;
  return options;
}

// ------------------------------------------------- FaultInjectingFs itself

TEST(FaultInjectingFsTest, AppendIsVolatileUntilSync) {
  FaultInjectingFs fs(1);
  ASSERT_TRUE(fs.CreateDirs("d").ok());
  auto file = fs.OpenTrunc("d/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello").ok());
  EXPECT_FALSE(fs.IsDurable("d/f"));
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(fs.SyncDir("d").ok());
  EXPECT_TRUE(fs.IsDurable("d/f"));
}

TEST(FaultInjectingFsTest, PowerCutKeepsSyncedPrefixOfUnsyncedTail) {
  FaultInjectingFs fs(2);
  ASSERT_TRUE(fs.CreateDirs("d").ok());
  auto file = fs.OpenTrunc("d/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(fs.SyncDir("d").ok());
  ASSERT_TRUE((*file)->Append("-volatile-tail").ok());
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultInjectingFs replay(2);
    ASSERT_TRUE(replay.CreateDirs("d").ok());
    auto f = replay.OpenTrunc("d/f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("durable").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE(replay.SyncDir("d").ok());
    ASSERT_TRUE((*f)->Append("-volatile-tail").ok());
    replay.PowerCut(seed);
    auto data = replay.ReadFile("d/f");
    ASSERT_TRUE(data.ok());
    // The synced prefix always survives; the tail survives as a prefix.
    ASSERT_GE(data->size(), std::string("durable").size());
    EXPECT_EQ(data->substr(0, 7), "durable");
    EXPECT_EQ(*data, std::string("durable-volatile-tail").substr(0, data->size()));
  }
}

TEST(FaultInjectingFsTest, UnsyncedRemoveCanResurrectSyncedCannot) {
  bool resurrected = false;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultInjectingFs fs(3);
    ASSERT_TRUE(fs.CreateDirs("d").ok());
    auto f = fs.OpenTrunc("d/f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("x").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE(fs.SyncDir("d").ok());
    ASSERT_TRUE(fs.Remove("d/f").ok());
    fs.PowerCut(seed);
    if (fs.FileExists("d/f")) resurrected = true;
  }
  // The removal never reached the directory block: some crash outcome must
  // bring the file back.
  EXPECT_TRUE(resurrected);

  // With the directory synced after the removal, no seed resurrects it.
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultInjectingFs fs(3);
    ASSERT_TRUE(fs.CreateDirs("d").ok());
    auto f = fs.OpenTrunc("d/f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("x").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE(fs.SyncDir("d").ok());
    ASSERT_TRUE(fs.Remove("d/f").ok());
    ASSERT_TRUE(fs.SyncDir("d").ok());
    fs.PowerCut(seed);
    EXPECT_FALSE(fs.FileExists("d/f"));
  }
}

TEST(FaultInjectingFsTest, FailAfterWindowAndStickyModes) {
  FaultInjectingFs fs(4);
  ASSERT_TRUE(fs.CreateDirs("d").ok());
  const int64_t base = fs.op_count();
  fs.FailAfter(base + 1, 1);  // exactly the second upcoming op fails
  EXPECT_TRUE(fs.CreateDirs("d/a").ok());
  Status failed = fs.CreateDirs("d/b");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_TRUE(fs.CreateDirs("d/c").ok());  // window passed

  fs.FailAfter(fs.op_count());  // sticky: everything from here on fails
  EXPECT_FALSE(fs.CreateDirs("d/e").ok());
  EXPECT_FALSE(fs.CreateDirs("d/f").ok());
  fs.ClearFaults();
  EXPECT_TRUE(fs.CreateDirs("d/g").ok());
}

TEST(FaultInjectingFsTest, PowerCutStalesOpenHandles) {
  FaultInjectingFs fs(5);
  ASSERT_TRUE(fs.CreateDirs("d").ok());
  auto file = fs.OpenTrunc("d/f");
  ASSERT_TRUE(file.ok());
  fs.PowerCut(1);
  Status stale = (*file)->Append("after reboot");
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kIoError);
}

// ------------------------------------------------- ObjectStore crash paths

TEST(ObjectStoreCrashTest, AckedPutSurvivesEveryPowerCut) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FaultInjectingFs fs(10 + seed);
    auto store = ObjectStore::Open("root", &fs);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("bucket/a", "payload-a").ok());
    fs.PowerCut(seed);
    auto reopened = ObjectStore::Open("root", &fs);
    ASSERT_TRUE(reopened.ok());
    auto got = reopened->Get("bucket/a");
    ASSERT_TRUE(got.ok()) << "acked object lost at seed " << seed;
    EXPECT_EQ(*got, "payload-a");
  }
}

TEST(ObjectStoreCrashTest, CrashAnywhereInPutLeavesOldOrNewNeverTorn) {
  // Dry run to count the fs ops a Put of the second version consumes.
  int64_t put_ops = 0;
  {
    FaultInjectingFs fs(20);
    auto store = ObjectStore::Open("root", &fs);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("bucket/a", "old-value").ok());
    const int64_t before = fs.op_count();
    ASSERT_TRUE(store->Put("bucket/a", "new-value!").ok());
    put_ops = fs.op_count() - before;
  }
  ASSERT_GT(put_ops, 0);
  for (int64_t fail_at = 0; fail_at < put_ops; ++fail_at) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(20);
      auto store = ObjectStore::Open("root", &fs);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE(store->Put("bucket/a", "old-value").ok());
      fs.FailAfter(fs.op_count() + fail_at);
      Status put = store->Put("bucket/a", "new-value!");
      fs.PowerCut(seed);
      auto reopened = ObjectStore::Open("root", &fs);
      ASSERT_TRUE(reopened.ok());
      auto got = reopened->Get("bucket/a");
      ASSERT_TRUE(got.ok()) << "object vanished (fail_at=" << fail_at << ")";
      if (put.ok()) {
        EXPECT_EQ(*got, "new-value!") << "acked Put lost (fail_at=" << fail_at
                                      << ", seed=" << seed << ")";
      } else {
        EXPECT_TRUE(*got == "old-value" || *got == "new-value!")
            << "torn object visible: '" << *got << "' (fail_at=" << fail_at
            << ", seed=" << seed << ")";
      }
      // Staging garbage must never surface through List.
      auto listed = reopened->List();
      ASSERT_TRUE(listed.ok());
      for (const ObjectInfo& info : *listed) {
        EXPECT_EQ(info.key, "bucket/a");
      }
    }
  }
}

TEST(ObjectStoreCrashTest, PutIfAbsentWinnerIsDurableUnderFaults) {
  // Count ops of a clean PutIfAbsent.
  int64_t pia_ops = 0;
  {
    FaultInjectingFs fs(30);
    auto store = ObjectStore::Open("root", &fs);
    ASSERT_TRUE(store.ok());
    const int64_t before = fs.op_count();
    ASSERT_TRUE(store->PutIfAbsent("commit/0", "winner").ok());
    pia_ops = fs.op_count() - before;
  }
  for (int64_t fail_at = 0; fail_at < pia_ops; ++fail_at) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(30);
      auto store = ObjectStore::Open("root", &fs);
      ASSERT_TRUE(store.ok());
      fs.FailAfter(fs.op_count() + fail_at);
      Status won = store->PutIfAbsent("commit/0", "winner");
      fs.PowerCut(seed);
      auto reopened = ObjectStore::Open("root", &fs);
      ASSERT_TRUE(reopened.ok());
      auto got = reopened->Get("commit/0");
      if (won.ok()) {
        // An acknowledged commit must survive the crash with its payload.
        ASSERT_TRUE(got.ok())
            << "acked PutIfAbsent lost (fail_at=" << fail_at << ")";
        EXPECT_EQ(*got, "winner");
      } else if (got.ok()) {
        // Unacked attempt may have landed, but never half-written.
        EXPECT_EQ(*got, "winner");
      }
    }
  }
}

// ------------------------------------------------- KvStore crash matrix

TEST(KvStoreCrashTest, AckedWritesSurviveCrashAfterEachWalAppend) {
  constexpr int kWrites = 10;
  for (int acked = 1; acked <= kWrites; ++acked) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(40);
      auto store = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(store.ok());
      for (int i = 0; i < acked; ++i) {
        ASSERT_TRUE(
            (*store)->Put("k" + std::to_string(i), "v" + std::to_string(i))
                .ok());
      }
      fs.PowerCut(seed);
      auto reopened = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(reopened.ok());
      for (int i = 0; i < acked; ++i) {
        auto got = (*reopened)->Get("k" + std::to_string(i));
        ASSERT_TRUE(got.ok()) << "k" << i << " lost after crash (acked="
                              << acked << ", seed=" << seed << ")";
        EXPECT_EQ(*got, "v" + std::to_string(i));
      }
    }
  }
}

TEST(KvStoreCrashTest, CrashMidRunWriteLosesNothing) {
  // Ops consumed by a clean Flush after three puts.
  int64_t flush_ops = 0;
  {
    FaultInjectingFs fs(50);
    auto store = KvStore::Open("db", {}, &fs);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Put("b", "2").ok());
    ASSERT_TRUE((*store)->Delete("a").ok());
    const int64_t before = fs.op_count();
    ASSERT_TRUE((*store)->Flush().ok());
    flush_ops = fs.op_count() - before;
  }
  ASSERT_GT(flush_ops, 0);
  for (int64_t fail_at = 0; fail_at < flush_ops; ++fail_at) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(50);
      auto store = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE((*store)->Put("a", "1").ok());
      ASSERT_TRUE((*store)->Put("b", "2").ok());
      ASSERT_TRUE((*store)->Delete("a").ok());
      fs.FailAfter(fs.op_count() + fail_at);
      (void)(*store)->Flush();  // ignore: may fail; durability must hold
      fs.PowerCut(seed);
      auto reopened = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(reopened.ok())
          << "recovery failed (fail_at=" << fail_at << ", seed=" << seed
          << "): " << reopened.status().message();
      auto b = (*reopened)->Get("b");
      ASSERT_TRUE(b.ok()) << "acked key lost in flush crash (fail_at="
                          << fail_at << ", seed=" << seed << ")";
      EXPECT_EQ(*b, "2");
      EXPECT_FALSE((*reopened)->Get("a").ok())
          << "deleted key resurrected by flush crash (fail_at=" << fail_at
          << ", seed=" << seed << ")";
    }
  }
}

TEST(KvStoreCrashTest, CrashMidCompactionNeverResurrectsDeletes) {
  // Setup: two runs, one holding a value later deleted; the delete is
  // flushed too, then compaction merges. A crash (or failed unlink) at any
  // point may leave the old run on disk — the deleted key must stay dead.
  auto setup = [](FaultInjectingFs* fs) -> std::unique_ptr<KvStore> {
    auto store = KvStore::Open("db", {}, fs);
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE((*store)->Put("doomed", "old").ok());
    EXPECT_TRUE((*store)->Put("kept", "yes").ok());
    EXPECT_TRUE((*store)->Flush().ok());
    EXPECT_TRUE((*store)->Delete("doomed").ok());
    EXPECT_TRUE((*store)->Flush().ok());
    return std::move(*store);
  };
  int64_t compact_ops = 0;
  {
    FaultInjectingFs fs(60);
    auto store = setup(&fs);
    const int64_t before = fs.op_count();
    ASSERT_TRUE(store->Compact().ok());
    compact_ops = fs.op_count() - before;
  }
  ASSERT_GT(compact_ops, 0);
  for (int64_t fail_at = 0; fail_at < compact_ops; ++fail_at) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(60);
      auto store = setup(&fs);
      fs.FailAfter(fs.op_count() + fail_at);
      (void)store->Compact();  // ignore: may fail; durability must hold
      fs.PowerCut(seed);
      auto reopened = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(reopened.ok());
      EXPECT_FALSE((*reopened)->Get("doomed").ok())
          << "tombstone lost in compaction crash: deleted key resurrected "
          << "(fail_at=" << fail_at << ", seed=" << seed << ")";
      auto kept = (*reopened)->Get("kept");
      ASSERT_TRUE(kept.ok()) << "live key lost in compaction crash (fail_at="
                             << fail_at << ", seed=" << seed << ")";
      EXPECT_EQ(*kept, "yes");
    }
  }
}

TEST(KvStoreCrashTest, FailedUnlinkOfOldRunsCannotResurrectDeletes) {
  // The regression the tombstone-retention fix targets: compaction succeeds
  // logically, but deleting the superseded runs fails (every Remove in the
  // window is refused), so stale runs with the deleted key stay on disk.
  for (int64_t fail_at = 0; fail_at < 8; ++fail_at) {
    FaultInjectingFs fs(65);
    auto store = KvStore::Open("db", {}, &fs);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("doomed", "old").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Delete("doomed").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    fs.FailAfter(fs.op_count() + fail_at, 2);
    (void)(*store)->Compact();  // ignore: may fail; checking reopen below
    store->reset();             // clean close, no crash — just reopen
    fs.ClearFaults();
    auto reopened = KvStore::Open("db", {}, &fs);
    ASSERT_TRUE(reopened.ok());
    EXPECT_FALSE((*reopened)->Get("doomed").ok())
        << "deleted key resurrected after failed old-run unlink (fail_at="
        << fail_at << ")";
  }
}

TEST(KvStoreCrashTest, WalRollbackAfterTransientAppendFailure) {
  FaultInjectingFs fs(70);
  auto store = KvStore::Open("db", {}, &fs);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("first", "ok").ok());
  // Fail exactly the next append; the rollback truncate+sync succeed, so
  // the WAL stays usable and the next write lands cleanly after it.
  fs.FailAfter(fs.op_count(), 1);
  EXPECT_FALSE((*store)->Put("torn", "never-acked").ok());
  ASSERT_TRUE((*store)->Put("second", "ok").ok());
  store->reset();
  auto reopened = KvStore::Open("db", {}, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Get("first").ok());
  EXPECT_TRUE((*reopened)->Get("second").ok());
  EXPECT_FALSE((*reopened)->Get("torn").ok())
      << "unacknowledged torn append visible after reopen";
}

TEST(KvStoreCrashTest, WalPoisonedWhenRollbackImpossible) {
  FaultInjectingFs fs(80);
  auto store = KvStore::Open("db", {}, &fs);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("first", "ok").ok());
  fs.FailAfter(fs.op_count());  // sticky: append fails AND rollback fails
  EXPECT_FALSE((*store)->Put("torn", "x").ok());
  fs.ClearFaults();
  // The WAL could not be repaired; acknowledging more writes against it
  // would strand them behind a torn record, so the store must refuse.
  Status refused = (*store)->Put("after", "y");
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kIoError);
  // Reopen recovers: the torn tail is truncated away, acked data intact.
  store->reset();
  auto reopened = KvStore::Open("db", {}, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Get("first").ok());
  ASSERT_TRUE((*reopened)->Put("after", "y").ok());
}

TEST(KvStoreCrashTest, GroupCommittedBatchLandsAsCleanPrefix) {
  // A WriteBatch is one WAL append of individually CRC-framed records: a
  // crash mid-commit may keep any *prefix* of the records, but never a torn
  // record, never a later record without an earlier one, and an OK means
  // every record is durable.
  constexpr int kBatchKeys = 6;
  auto make_batch = [] {
    WriteBatch batch;
    for (int i = 0; i < kBatchKeys; ++i) {
      batch.Put("batch-k" + std::to_string(i), "new" + std::to_string(i));
    }
    batch.Delete("doomed");
    return batch;
  };
  // Dry run to count the fs ops one batched Write consumes.
  int64_t write_ops = 0;
  {
    FaultInjectingFs fs(100);
    auto store = KvStore::Open("db", {}, &fs);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("doomed", "old").ok());
    const int64_t before = fs.op_count();
    ASSERT_TRUE((*store)->Write(make_batch()).ok());
    write_ops = fs.op_count() - before;
  }
  ASSERT_GT(write_ops, 0);
  for (int64_t fail_at = 0; fail_at <= write_ops; ++fail_at) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjectingFs fs(100);
      auto store = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE((*store)->Put("doomed", "old").ok());
      if (fail_at < write_ops) fs.FailAfter(fs.op_count() + fail_at);
      Status wrote = (*store)->Write(make_batch());
      fs.PowerCut(seed);
      auto reopened = KvStore::Open("db", {}, &fs);
      ASSERT_TRUE(reopened.ok());
      // Find how many leading records landed.
      int landed = 0;
      while (landed < kBatchKeys &&
             (*reopened)->Get("batch-k" + std::to_string(landed)).ok()) {
        ++landed;
      }
      if (wrote.ok()) {
        EXPECT_EQ(landed, kBatchKeys)
            << "acked batch record lost (fail_at=" << fail_at
            << ", seed=" << seed << ")";
        EXPECT_FALSE((*reopened)->Get("doomed").ok())
            << "acked batch delete lost (fail_at=" << fail_at << ")";
      } else {
        // Prefix atomicity: no record after the first missing one may be
        // visible, and the trailing delete lands only with the full batch.
        for (int i = landed; i < kBatchKeys; ++i) {
          EXPECT_FALSE((*reopened)->Get("batch-k" + std::to_string(i)).ok())
              << "batch record " << i << " landed out of order (fail_at="
              << fail_at << ", seed=" << seed << ", landed=" << landed << ")";
        }
        auto doomed = (*reopened)->Get("doomed");
        if (landed < kBatchKeys) {
          ASSERT_TRUE(doomed.ok())
              << "batch delete landed before earlier records (fail_at="
              << fail_at << ", seed=" << seed << ")";
          EXPECT_EQ(*doomed, "old");
        }
      }
      // Landed records must carry their exact payloads — never torn.
      for (int i = 0; i < landed; ++i) {
        auto got = (*reopened)->Get("batch-k" + std::to_string(i));
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, "new" + std::to_string(i));
      }
    }
  }
}

// ------------------------------------------------- Property harness

TEST(KvStoreCrashPropertyTest, DurabilityContractHoldsAtEveryCrashPoint) {
  const std::vector<WorkloadOp> ops = MakeWorkload(1234, 48);
  // Dry run (no faults) to learn how many fs ops the workload performs.
  int64_t total_ops = 0;
  {
    FaultInjectingFs fs(7);
    auto store = KvStore::Open("db", SmallStoreOptions(), &fs);
    ASSERT_TRUE(store.ok());
    CrashModel model;
    RunWorkload(store->get(), ops, &model);
    ASSERT_FALSE(model.has_inflight());  // no faults -> everything acked
    total_ops = fs.op_count();
  }
  ASSERT_GT(total_ops, 0);
  int schedules = 0;
  for (int64_t fail_at = 0; fail_at < total_ops; ++fail_at) {
    for (uint64_t cut_seed = 0; cut_seed < 2; ++cut_seed) {
      FaultInjectingFs fs(7);
      fs.FailAfter(fail_at);
      CrashModel model;
      auto store = KvStore::Open("db", SmallStoreOptions(), &fs);
      if (store.ok()) {
        RunWorkload(store->get(), ops, &model);
      }
      fs.PowerCut(cut_seed * 977 + static_cast<uint64_t>(fail_at));
      auto reopened = KvStore::Open("db", SmallStoreOptions(), &fs);
      ASSERT_TRUE(reopened.ok())
          << "recovery failed (fail_at=" << fail_at
          << ", cut_seed=" << cut_seed
          << "): " << reopened.status().message();
      EXPECT_TRUE(CheckModel(**reopened, model))
          << "(fail_at=" << fail_at << ", cut_seed=" << cut_seed << ")";
      ++schedules;
    }
  }
  // Sanity: the loop really enumerated crash points.
  EXPECT_GT(schedules, 100);
}

TEST(KvStoreCrashPropertyTest, HarnessDetectsDroppedSyncs) {
  // Negative control: on a disk that lies about fsync, some crash schedule
  // must violate the durability contract. If this ever stops failing under
  // drop_syncs, the harness has gone blind and proves nothing above.
  const std::vector<WorkloadOp> ops = MakeWorkload(999, 32);
  bool violated = false;
  for (uint64_t seed = 0; seed < 8 && !violated; ++seed) {
    FaultInjectingFs fs(seed);
    fs.set_drop_syncs(true);
    auto store = KvStore::Open("db", SmallStoreOptions(), &fs);
    ASSERT_TRUE(store.ok());
    CrashModel model;
    RunWorkload(store->get(), ops, &model);
    fs.PowerCut(seed + 100);
    auto reopened = KvStore::Open("db", SmallStoreOptions(), &fs);
    if (!reopened.ok()) {
      violated = true;  // even recovery is allowed to fail on a lying disk
      break;
    }
    if (!CheckModel(**reopened, model)) violated = true;
  }
  EXPECT_TRUE(violated)
      << "drop_syncs lost no acked data: the crash harness is not actually "
         "sensitive to fsync discipline";
}

// ------------------------------------------------- Polystore retry

TEST(PolystoreRetryTest, TransientObjectFaultsAreRetried) {
  FaultInjectingFs fs(90);
  PolystoreOptions options;
  options.retry.max_attempts = 4;
  auto store = Polystore::Open("lake", options, &fs);
  ASSERT_TRUE(store.ok());
  store->retry().set_sleep_fn([](std::chrono::milliseconds) {});
  // One transient blip at the very first op of the Put: the retry loop must
  // absorb it.
  fs.FailAfter(fs.op_count(), 1);
  ASSERT_TRUE(store->StoreObject("logs", "raw/app.log", "line1\nline2\n").ok());
  auto raw = store->objects().Get("raw/app.log");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, "line1\nline2\n");
}

TEST(PolystoreRetryTest, PermanentErrorsAreNotRetried) {
  FaultInjectingFs fs(91);
  PolystoreOptions options;
  options.retry.max_attempts = 3;
  auto store = Polystore::Open("lake", options, &fs);
  ASSERT_TRUE(store.ok());
  store->retry().set_sleep_fn([](std::chrono::milliseconds) {});
  ASSERT_TRUE(store->StoreObject("logs", "raw/a.log", "x").ok());
  // Sticky transient faults: one read per attempt, then give up.
  int64_t before = fs.op_count();
  fs.FailAfter(before);
  EXPECT_FALSE(store->ReadAsTable("logs").ok());
  EXPECT_EQ(fs.op_count() - before, 3);
  fs.ClearFaults();
  // Permanent NotFound: exactly one attempt, no retries.
  ASSERT_TRUE(fs.Remove("lake/raw/a.log").ok());
  before = fs.op_count();
  EXPECT_FALSE(store->ReadAsTable("logs").ok());
  EXPECT_EQ(fs.op_count() - before, 1);
}

TEST(PolystoreRetryTest, GraphSnapshotRoundTripsThroughObjectTier) {
  FaultInjectingFs fs(92);
  auto store = Polystore::Open("lake", {}, &fs);
  ASSERT_TRUE(store.ok());
  store->retry().set_sleep_fn([](std::chrono::milliseconds) {});
  GraphStore& g = store->graph();
  auto a = g.AddNode("dataset");
  auto b = g.AddNode("dataset");
  ASSERT_TRUE(g.AddEdge(a, b, "derived_from").ok());
  // A transient blip during the snapshot Put is absorbed by the retry.
  fs.FailAfter(fs.op_count(), 1);
  ASSERT_TRUE(store->SaveGraph("meta/graph.json").ok());
  // Wipe the in-memory graph, reload from the object tier.
  store->graph() = GraphStore();
  EXPECT_EQ(store->graph().num_nodes(), 0u);
  ASSERT_TRUE(store->LoadGraph("meta/graph.json").ok());
  EXPECT_EQ(store->graph().num_nodes(), 2u);
  EXPECT_EQ(store->graph().num_edges(), 1u);
  EXPECT_EQ(store->graph().OutEdges(a, "derived_from").size(), 1u);
}

}  // namespace
}  // namespace lakekit::storage
