#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/fault_injecting_fs.h"
#include "storage/kv_store.h"
#include "storage_crash_harness.h"

namespace lakekit::storage {
namespace {

using crash_harness::CheckModel;
using crash_harness::CrashModel;
using crash_harness::MakeWorkload;
using crash_harness::RunWorkload;
using crash_harness::WorkloadOp;

/// Number of random crash schedules to run. CI can crank this up for soak
/// runs without a rebuild.
int NumSchedules() {
  constexpr int kDefault = 48;
  const char* env = std::getenv("LAKEKIT_FUZZ_SCHEDULES");
  if (env == nullptr) return kDefault;
  int n = std::atoi(env);
  return n > 0 ? n : kDefault;
}

KvStoreOptions FuzzStoreOptions() {
  KvStoreOptions options;
  options.memtable_flush_bytes = 200;
  options.compaction_trigger_runs = 3;
  return options;
}

/// Seeded fault-injection fuzz: each schedule draws a random workload, a
/// random fault offset, and a random power-cut outcome, then crashes the
/// store TWICE — once mid-workload and once mid-continuation after the
/// first recovery — checking the durability contract after each reopen.
/// Every failure message carries the schedule seed, so any hit replays
/// deterministically.
TEST(StorageFaultFuzzTest, RandomCrashSchedulesUpholdDurabilityContract) {
  const int schedules = NumSchedules();
  Rng meta_rng(20260806);
  for (int i = 0; i < schedules; ++i) {
    const uint64_t workload_seed = meta_rng.Next();
    const uint64_t fs_seed = meta_rng.Next();
    const size_t workload_len = 16 + static_cast<size_t>(meta_rng.Below(48));
    const std::vector<WorkloadOp> ops =
        MakeWorkload(workload_seed, workload_len);
    SCOPED_TRACE("schedule " + std::to_string(i) + " (workload_seed=" +
                 std::to_string(workload_seed) + ", fs_seed=" +
                 std::to_string(fs_seed) + ", len=" +
                 std::to_string(workload_len) + ")");

    // Clean run to learn the op budget for fault placement.
    int64_t total_ops = 0;
    {
      FaultInjectingFs fs(fs_seed);
      auto store = KvStore::Open("db", FuzzStoreOptions(), &fs);
      ASSERT_TRUE(store.ok());
      CrashModel model;
      RunWorkload(store->get(), ops, &model);
      total_ops = fs.op_count();
    }
    ASSERT_GT(total_ops, 0);

    // Crash #1: random fault offset mid-workload.
    const int64_t fail_at =
        static_cast<int64_t>(meta_rng.Below(static_cast<uint64_t>(total_ops)));
    FaultInjectingFs fs(fs_seed);
    fs.FailAfter(fail_at);
    CrashModel model;
    auto store = KvStore::Open("db", FuzzStoreOptions(), &fs);
    if (store.ok()) RunWorkload(store->get(), ops, &model);
    fs.PowerCut(meta_rng.Next());
    auto reopened = KvStore::Open("db", FuzzStoreOptions(), &fs);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed after crash #1 (fail_at=" << fail_at
        << "): " << reopened.status().message();
    ASSERT_TRUE(CheckModel(**reopened, model)) << "after crash #1";

    // Crash #2: re-derive ground truth from the recovered store, keep
    // writing, and pull the plug again — recovery must compose.
    auto recovered = (*reopened)->Scan();
    ASSERT_TRUE(recovered.ok());
    CrashModel model2;
    for (const auto& [key, value] : *recovered) model2.acked[key] = value;
    const std::vector<WorkloadOp> more =
        MakeWorkload(meta_rng.Next(), 12 + static_cast<size_t>(meta_rng.Below(20)));
    fs.FailAfter(static_cast<int64_t>(meta_rng.Below(200)));
    RunWorkload(reopened->get(), more, &model2);
    fs.PowerCut(meta_rng.Next());
    auto reopened2 = KvStore::Open("db", FuzzStoreOptions(), &fs);
    ASSERT_TRUE(reopened2.ok())
        << "recovery failed after crash #2: " << reopened2.status().message();
    ASSERT_TRUE(CheckModel(**reopened2, model2)) << "after crash #2";
  }
}

}  // namespace
}  // namespace lakekit::storage
