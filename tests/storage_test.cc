#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json/parser.h"
#include "storage/document_store.h"
#include "storage/fault_injecting_fs.h"
#include "storage/graph_store.h"
#include "storage/kv_store.h"
#include "storage/object_store.h"
#include "storage/polystore.h"

namespace lakekit::storage {
namespace {

namespace fs = std::filesystem;

/// Creates a fresh temp directory per test and removes it afterwards.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lakekit_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->test_suite_name() +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

// ---------------------------------------------------------------- Object

using ObjectStoreTest = TempDirTest;

TEST_F(ObjectStoreTest, PutGetRoundTrip) {
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("bucket/a.csv", "id,name\n1,x\n").ok());
  auto data = store->Get("bucket/a.csv");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "id,name\n1,x\n");
}

TEST_F(ObjectStoreTest, GetMissingIsNotFound) {
  auto store = ObjectStore::Open(Path("objects"));
  EXPECT_TRUE(store->Get("nope").status().IsNotFound());
  EXPECT_FALSE(store->Exists("nope"));
}

TEST_F(ObjectStoreTest, PutOverwrites) {
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store->Put("k", "v1").ok());
  ASSERT_TRUE(store->Put("k", "v2").ok());
  EXPECT_EQ(*store->Get("k"), "v2");
}

TEST_F(ObjectStoreTest, PutIfAbsentIsExclusive) {
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store->PutIfAbsent("log/0.json", "{}").ok());
  Status second = store->PutIfAbsent("log/0.json", "{}");
  EXPECT_TRUE(second.IsAlreadyExists());
  EXPECT_EQ(*store->Get("log/0.json"), "{}");
}

TEST_F(ObjectStoreTest, DeleteAndReList) {
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store->Put("a/1", "x").ok());
  ASSERT_TRUE(store->Put("a/2", "y").ok());
  ASSERT_TRUE(store->Put("b/1", "z").ok());
  auto listed = store->List("a/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].key, "a/1");
  EXPECT_EQ((*listed)[1].key, "a/2");
  ASSERT_TRUE(store->Delete("a/1").ok());
  EXPECT_TRUE(store->Delete("a/1").IsNotFound());
  EXPECT_EQ(store->List("a/")->size(), 1u);
}

TEST_F(ObjectStoreTest, ListIsSorted) {
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store->Put("z", "1").ok());
  ASSERT_TRUE(store->Put("a", "2").ok());
  ASSERT_TRUE(store->Put("m/q", "3").ok());
  auto listed = store->List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 3u);
  EXPECT_EQ((*listed)[0].key, "a");
  EXPECT_EQ((*listed)[2].key, "z");
}

TEST_F(ObjectStoreTest, RejectsEscapingKeys) {
  auto store = ObjectStore::Open(Path("objects"));
  EXPECT_FALSE(store->Put("../evil", "x").ok());
  EXPECT_FALSE(store->Put("/abs", "x").ok());
  EXPECT_FALSE(store->Put("a/../../b", "x").ok());
  EXPECT_FALSE(store->Put("", "x").ok());
  EXPECT_FALSE(store->Put("a//b", "x").ok());
}

TEST_F(ObjectStoreTest, BinarySafeData) {
  auto store = ObjectStore::Open(Path("objects"));
  std::string binary("\x00\x01\xff\n\r\x7f", 6);
  ASSERT_TRUE(store->Put("bin", binary).ok());
  EXPECT_EQ(*store->Get("bin"), binary);
}

// ---------------------------------------------------------------- KvStore

using KvStoreTest = TempDirTest;

TEST_F(KvStoreTest, PutGetDelete) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k1", "v1").ok());
  EXPECT_EQ(*(*store)->Get("k1"), "v1");
  ASSERT_TRUE((*store)->Delete("k1").ok());
  EXPECT_TRUE((*store)->Get("k1").status().IsNotFound());
}

TEST_F(KvStoreTest, OverwriteTakesLatest) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("k", "old").ok());
  ASSERT_TRUE((*store)->Put("k", "new").ok());
  EXPECT_EQ(*(*store)->Get("k"), "new");
}

TEST_F(KvStoreTest, WalRecoveryAfterReopen) {
  {
    auto store = KvStore::Open(Path("kv"));
    ASSERT_TRUE((*store)->Put("persist", "me").ok());
    ASSERT_TRUE((*store)->Put("gone", "soon").ok());
    ASSERT_TRUE((*store)->Delete("gone").ok());
    // No flush: data only in WAL.
  }
  auto reopened = KvStore::Open(Path("kv"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("persist"), "me");
  EXPECT_TRUE((*reopened)->Get("gone").status().IsNotFound());
}

TEST_F(KvStoreTest, FlushCreatesRunAndSurvivesReopen) {
  {
    auto store = KvStore::Open(Path("kv"));
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_EQ((*store)->num_runs(), 1u);
    EXPECT_EQ((*store)->memtable_entries(), 0u);
    ASSERT_TRUE((*store)->Put("b", "2").ok());
  }
  auto reopened = KvStore::Open(Path("kv"));
  EXPECT_EQ(*(*reopened)->Get("a"), "1");
  EXPECT_EQ(*(*reopened)->Get("b"), "2");
}

TEST_F(KvStoreTest, NewerRunShadowsOlder) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("k", "v1").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("k", "v2").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->num_runs(), 2u);
  EXPECT_EQ(*(*store)->Get("k"), "v2");
}

TEST_F(KvStoreTest, TombstoneShadowsRunValue) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, ScanMergesAndSorts) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("b", "2").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  ASSERT_TRUE((*store)->Put("c", "3").ok());
  ASSERT_TRUE((*store)->Delete("c").ok());
  auto scan = (*store)->Scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 2u);
  EXPECT_EQ((*scan)[0].first, "a");
  EXPECT_EQ((*scan)[1].first, "b");
}

TEST_F(KvStoreTest, ScanRange) {
  auto store = KvStore::Open(Path("kv"));
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE((*store)->Put(std::string(1, c), "v").ok());
  }
  auto scan = (*store)->Scan("b", "e");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);  // b, c, d
  EXPECT_EQ((*scan)[0].first, "b");
  EXPECT_EQ((*scan)[2].first, "d");
}

TEST_F(KvStoreTest, ScanPrefix) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("cat/1", "a").ok());
  ASSERT_TRUE((*store)->Put("cat/2", "b").ok());
  ASSERT_TRUE((*store)->Put("dog/1", "c").ok());
  auto scan = (*store)->ScanPrefix("cat/");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 2u);
}

TEST_F(KvStoreTest, CompactionDropsShadowedAndTombstones) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("keep", "v1").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("keep", "v2").ok());
  ASSERT_TRUE((*store)->Put("drop", "x").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Delete("drop").ok());
  ASSERT_TRUE((*store)->Compact().ok());
  EXPECT_EQ((*store)->num_runs(), 1u);
  EXPECT_EQ(*(*store)->Get("keep"), "v2");
  EXPECT_TRUE((*store)->Get("drop").status().IsNotFound());
}

TEST_F(KvStoreTest, AutomaticFlushOnMemtableSize) {
  KvStoreOptions options;
  options.memtable_flush_bytes = 64;
  auto store = KvStore::Open(Path("kv"), options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*store)->Put("key" + std::to_string(i), std::string(16, 'x')).ok());
  }
  EXPECT_GT((*store)->num_runs(), 0u);
  // Everything is still readable.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i)).ok());
  }
}

TEST_F(KvStoreTest, EmptyKeyRejected) {
  auto store = KvStore::Open(Path("kv"));
  EXPECT_FALSE((*store)->Put("", "v").ok());
  EXPECT_FALSE((*store)->Delete("").ok());
}

TEST_F(KvStoreTest, BinaryValues) {
  auto store = KvStore::Open(Path("kv"));
  std::string binary("\x00\x01\xff", 3);
  ASSERT_TRUE((*store)->Put("bin", binary).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ(*(*store)->Get("bin"), binary);
}

TEST_F(KvStoreTest, ScanPrefixHighByteCarriesIntoPrecedingByte) {
  // Regression: a prefix ending in 0xFF used to wrap the successor bound to
  // 0x00 ("k\xFF" -> end "k\x00" < start) and silently scan an empty range.
  // The carry turns "k\xFF" into end "l".
  auto store = KvStore::Open(Path("kv"));
  const std::string prefix = "k\xFF";
  ASSERT_TRUE((*store)->Put(prefix, "exact").ok());
  ASSERT_TRUE((*store)->Put(prefix + std::string(1, '\x01'), "low").ok());
  ASSERT_TRUE((*store)->Put(prefix + "zz", "high").ok());
  ASSERT_TRUE((*store)->Put("k\xFE", "below").ok());
  ASSERT_TRUE((*store)->Put("l", "sibling").ok());
  auto scan = (*store)->ScanPrefix(prefix);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);
  EXPECT_EQ((*scan)[0].first, prefix);
  EXPECT_EQ((*scan)[1].first, prefix + std::string(1, '\x01'));
  EXPECT_EQ((*scan)[2].first, prefix + "zz");
  // Same result when the entries live in a run instead of the memtable.
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->ScanPrefix(prefix)->size(), 3u);
}

TEST_F(KvStoreTest, ScanPrefixAllHighBytesFallsBackToOpenScan) {
  // An all-0xFF prefix has no successor key at its length: the scan must
  // fall back to an open-ended range plus filtering, not wrap around.
  auto store = KvStore::Open(Path("kv"));
  const std::string prefix = "\xFF\xFF";
  ASSERT_TRUE((*store)->Put(prefix, "exact").ok());
  ASSERT_TRUE((*store)->Put(prefix + "tail", "tail").ok());
  ASSERT_TRUE((*store)->Put("\xFF", "shorter").ok());
  ASSERT_TRUE((*store)->Put("\xFE\xFF", "other").ok());
  auto scan = (*store)->ScanPrefix(prefix);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 2u);
  EXPECT_EQ((*scan)[0].first, prefix);
  EXPECT_EQ((*scan)[1].first, prefix + "tail");
}

TEST_F(KvStoreTest, WriteBatchAppliesAllOpsInOrder) {
  auto store = KvStore::Open(Path("kv"));
  ASSERT_TRUE((*store)->Put("gone", "soon").ok());
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("gone");
  batch.Put("a", "1-again");  // later record in the same batch wins
  ASSERT_TRUE((*store)->Write(batch).ok());
  EXPECT_EQ(*(*store)->Get("a"), "1-again");
  EXPECT_EQ(*(*store)->Get("b"), "2");
  EXPECT_TRUE((*store)->Get("gone").status().IsNotFound());
  // The batch is replayed from the WAL on reopen.
  store->reset();
  auto reopened = KvStore::Open(Path("kv"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("a"), "1-again");
  EXPECT_TRUE((*reopened)->Get("gone").status().IsNotFound());
}

TEST_F(KvStoreTest, WriteBatchRejectsEmptyKeyAndAcceptsEmptyBatch) {
  auto store = KvStore::Open(Path("kv"));
  WriteBatch bad;
  bad.Put("ok", "v");
  bad.Put("", "v");
  EXPECT_FALSE((*store)->Write(bad).ok());
  // Nothing from the rejected batch may have been applied.
  EXPECT_TRUE((*store)->Get("ok").status().IsNotFound());
  WriteBatch empty;
  EXPECT_TRUE((*store)->Write(empty).ok());
}

TEST_F(KvStoreTest, WriteBatchPaysOneAppendAndOneFsync) {
  // The WriteBatch contract that makes group commit pay off: a batch of N
  // records costs the same fs ops as a single durable Put (one WAL append,
  // one fsync) — not N of each.
  FaultInjectingFs fs(7);
  auto store = KvStore::Open("db", {}, &fs);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("warmup", "x").ok());
  int64_t before = fs.op_count();
  ASSERT_TRUE((*store)->Put("single", "y").ok());
  const int64_t single_put_ops = fs.op_count() - before;
  WriteBatch batch;
  for (int i = 0; i < 64; ++i) {
    batch.Put("batch" + std::to_string(i), "z");
  }
  before = fs.op_count();
  ASSERT_TRUE((*store)->Write(batch).ok());
  EXPECT_EQ(fs.op_count() - before, single_put_ops);
}

TEST_F(KvStoreTest, GetAcrossManyRunsWithAndWithoutBloom) {
  for (size_t bloom_bits : {size_t{10}, size_t{0}}) {
    KvStoreOptions options;
    options.bloom_bits_per_key = bloom_bits;
    options.compaction_trigger_runs = 100;  // keep all runs alive
    auto store = KvStore::Open(
        Path("kv" + std::to_string(bloom_bits)), options);
    ASSERT_TRUE(store.ok());
    // 8 runs with disjoint key ranges — fence + bloom pruning territory.
    for (int run = 0; run < 8; ++run) {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE((*store)
                        ->Put("r" + std::to_string(run) + "-k" +
                                  std::to_string(i),
                              "v" + std::to_string(run * 100 + i))
                        .ok());
      }
      ASSERT_TRUE((*store)->Flush().ok());
    }
    ASSERT_EQ((*store)->num_runs(), 8u);
    for (int run = 0; run < 8; ++run) {
      for (int i = 0; i < 50; ++i) {
        auto got = (*store)->Get("r" + std::to_string(run) + "-k" +
                                 std::to_string(i));
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, "v" + std::to_string(run * 100 + i));
      }
    }
    EXPECT_TRUE((*store)->Get("r3-missing").status().IsNotFound());
    EXPECT_TRUE((*store)->Get("zzz").status().IsNotFound());
  }
}

TEST_F(KvStoreTest, BinaryKeysSurviveFlushAndProbe) {
  auto store = KvStore::Open(Path("kv"));
  std::string key1("\x00\x01\xff", 3);
  std::string key2("\xff\x00", 2);
  ASSERT_TRUE((*store)->Put(key1, "one").ok());
  ASSERT_TRUE((*store)->Put(key2, "two").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ(*(*store)->Get(key1), "one");
  EXPECT_EQ(*(*store)->Get(key2), "two");
  EXPECT_TRUE(
      (*store)->Get(std::string("\x00\x01", 2)).status().IsNotFound());
}

// ---------------------------------------------------------------- Document

TEST(DocumentStoreTest, InsertAssignsIds) {
  DocumentStore store;
  auto id1 = store.Insert("people", *json::Parse(R"({"name":"ada"})"));
  auto id2 = store.Insert("people", *json::Parse(R"({"name":"bob"})"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  auto doc = store.Get("people", *id1);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("name"), "ada");
  EXPECT_EQ(doc->GetInt("_id"), static_cast<int64_t>(*id1));
}

TEST(DocumentStoreTest, RejectsNonObject) {
  DocumentStore store;
  EXPECT_FALSE(store.Insert("c", json::Value(int64_t{1})).ok());
}

TEST(DocumentStoreTest, UpdateAndRemove) {
  DocumentStore store;
  auto id = store.Insert("c", *json::Parse(R"({"v":1})"));
  ASSERT_TRUE(store.Update("c", *id, *json::Parse(R"({"v":2})")).ok());
  EXPECT_EQ(store.Get("c", *id)->GetInt("v"), 2);
  ASSERT_TRUE(store.Remove("c", *id).ok());
  EXPECT_TRUE(store.Get("c", *id).status().IsNotFound());
  EXPECT_TRUE(store.Update("c", *id, *json::Parse("{}")).IsNotFound());
}

TEST(DocumentStoreTest, FindEqualOnNestedPath) {
  DocumentStore store;
  ASSERT_TRUE(
      store.Insert("c", *json::Parse(R"({"addr":{"city":"delft"},"n":1})"))
          .ok());
  ASSERT_TRUE(
      store.Insert("c", *json::Parse(R"({"addr":{"city":"aachen"},"n":2})"))
          .ok());
  ASSERT_TRUE(
      store.Insert("c", *json::Parse(R"({"addr":{"city":"delft"},"n":3})"))
          .ok());
  auto found = store.FindEqual("c", "addr.city", json::Value("delft"));
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].GetInt("n"), 1);
  EXPECT_EQ(found[1].GetInt("n"), 3);
}

TEST(DocumentStoreTest, FindEqualMissingPathMatchesNothing) {
  DocumentStore store;
  ASSERT_TRUE(store.Insert("c", *json::Parse(R"({"a":1})")).ok());
  EXPECT_TRUE(store.FindEqual("c", "b.c", json::Value(1)).empty());
  EXPECT_TRUE(store.FindEqual("nope", "a", json::Value(1)).empty());
}

TEST(DocumentStoreTest, NdjsonExportImportRoundTrip) {
  DocumentStore store;
  ASSERT_TRUE(store.Insert("c", *json::Parse(R"({"x":1})")).ok());
  ASSERT_TRUE(store.Insert("c", *json::Parse(R"({"x":2})")).ok());
  std::string ndjson = store.ExportNdjson("c");
  DocumentStore other;
  ASSERT_TRUE(other.ImportNdjson("c", ndjson).ok());
  EXPECT_EQ(other.Count("c"), 2u);
  // Ids preserved; further inserts do not collide.
  auto id = other.Insert("c", *json::Parse(R"({"x":3})"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 3u);
}

TEST(DocumentStoreTest, CollectionsAreIndependent) {
  DocumentStore store;
  ASSERT_TRUE(store.Insert("a", *json::Parse(R"({"v":1})")).ok());
  ASSERT_TRUE(store.Insert("b", *json::Parse(R"({"v":2})")).ok());
  EXPECT_EQ(store.Count("a"), 1u);
  EXPECT_EQ(store.Count("b"), 1u);
  EXPECT_EQ(store.CollectionNames(),
            (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------- Graph

TEST(GraphStoreTest, NodesAndEdges) {
  GraphStore g;
  auto a = g.AddNode("dataset");
  auto b = g.AddNode("dataset");
  auto e = g.AddEdge(a, b, "joinable");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  auto out = g.OutEdges(a);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, b);
  EXPECT_EQ(g.InEdges(b).size(), 1u);
  EXPECT_TRUE(g.OutEdges(b).empty());
}

TEST(GraphStoreTest, EdgeToMissingNodeFails) {
  GraphStore g;
  auto a = g.AddNode("x");
  EXPECT_FALSE(g.AddEdge(a, 999, "l").ok());
  EXPECT_FALSE(g.AddEdge(999, a, "l").ok());
}

TEST(GraphStoreTest, LabelFilters) {
  GraphStore g;
  auto a = g.AddNode("col");
  auto b = g.AddNode("col");
  ASSERT_TRUE(g.AddEdge(a, b, "pkfk").ok());
  ASSERT_TRUE(g.AddEdge(a, b, "similar").ok());
  EXPECT_EQ(g.OutEdges(a, "pkfk").size(), 1u);
  EXPECT_EQ(g.OutEdges(a).size(), 2u);
  EXPECT_EQ(g.NodesByLabel("col").size(), 2u);
  EXPECT_TRUE(g.NodesByLabel("zzz").empty());
}

TEST(GraphStoreTest, PropertiesAndLookup) {
  GraphStore g;
  json::Object props;
  props.Set("name", json::Value("orders.id"));
  auto a = g.AddNode("col", std::move(props));
  ASSERT_TRUE(g.SetNodeProperty(a, "cardinality", json::Value(42)).ok());
  auto found = g.FindNodes("name", json::Value("orders.id"));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, a);
  EXPECT_EQ(found[0].properties.Find("cardinality")->as_int(), 42);
}

TEST(GraphStoreTest, ShortestPathBfs) {
  GraphStore g;
  auto n1 = g.AddNode("n");
  auto n2 = g.AddNode("n");
  auto n3 = g.AddNode("n");
  auto n4 = g.AddNode("n");
  ASSERT_TRUE(g.AddEdge(n1, n2, "e").ok());
  ASSERT_TRUE(g.AddEdge(n2, n3, "e").ok());
  ASSERT_TRUE(g.AddEdge(n1, n4, "e").ok());
  ASSERT_TRUE(g.AddEdge(n4, n3, "e").ok());
  auto path = g.ShortestPath(n1, n3);
  ASSERT_EQ(path.size(), 3u);  // two 2-hop paths; any is fine
  EXPECT_EQ(path.front(), n1);
  EXPECT_EQ(path.back(), n3);
  EXPECT_TRUE(g.ShortestPath(n3, n1).empty());  // directed
  EXPECT_EQ(g.ShortestPath(n1, n1).size(), 1u);
}

TEST(GraphStoreTest, Reachability) {
  GraphStore g;
  auto a = g.AddNode("n");
  auto b = g.AddNode("n");
  auto c = g.AddNode("n");
  g.AddNode("n");  // disconnected
  ASSERT_TRUE(g.AddEdge(a, b, "e").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "e").ok());
  EXPECT_EQ(g.Reachable(a).size(), 3u);
  EXPECT_EQ(g.Reachable(c).size(), 1u);
}

// ---------------------------------------------------------------- Polystore

using PolystoreTest = TempDirTest;

TEST_F(PolystoreTest, FormatRouting) {
  EXPECT_EQ(Polystore::RouteFormat(DataFormat::kCsv), StoreKind::kRelational);
  EXPECT_EQ(Polystore::RouteFormat(DataFormat::kJson), StoreKind::kDocument);
  EXPECT_EQ(Polystore::RouteFormat(DataFormat::kGraph), StoreKind::kGraph);
  EXPECT_EQ(Polystore::RouteFormat(DataFormat::kLog), StoreKind::kObject);
  EXPECT_EQ(Polystore::RouteFormat(DataFormat::kBinary), StoreKind::kObject);
}

TEST_F(PolystoreTest, StoreTableAndReadBack) {
  auto ps = Polystore::Open(Path("poly"));
  ASSERT_TRUE(ps.ok());
  auto t = table::Table::FromCsv("orders", "id,total\n1,9.5\n2,3.25\n");
  ASSERT_TRUE(ps->StoreTable("orders", *t).ok());
  auto loc = ps->Lookup("orders");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->store, StoreKind::kRelational);
  auto back = ps->ReadAsTable("orders");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
}

TEST_F(PolystoreTest, StoreDocumentsAndReadBackAsTable) {
  auto ps = Polystore::Open(Path("poly"));
  std::vector<json::Value> docs;
  docs.push_back(*json::Parse(R"({"name":"ada","age":36})"));
  docs.push_back(*json::Parse(R"({"name":"bob"})"));
  ASSERT_TRUE(ps->StoreDocuments("people", std::move(docs)).ok());
  auto t = ps->ReadAsTable("people");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_TRUE(t->schema().HasField("name"));
  EXPECT_TRUE(t->schema().HasField("age"));
  // _id is stripped from the tabular view.
  EXPECT_FALSE(t->schema().HasField("_id"));
}

TEST_F(PolystoreTest, StoreObjectAndReadBackAsCsvTable) {
  auto ps = Polystore::Open(Path("poly"));
  ASSERT_TRUE(
      ps->StoreObject("raw", "landing/raw.csv", "a,b\n1,2\n").ok());
  auto t = ps->ReadAsTable("raw");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST_F(PolystoreTest, DuplicateRegistrationFails) {
  auto ps = Polystore::Open(Path("poly"));
  auto t = table::Table::FromCsv("x", "a\n1\n");
  ASSERT_TRUE(ps->StoreTable("x", *t).ok());
  auto t2 = table::Table::FromCsv("x2", "a\n1\n");
  EXPECT_TRUE(ps->RegisterDataset("x", {StoreKind::kRelational, "x2"})
                  .IsAlreadyExists());
}

TEST_F(PolystoreTest, LookupMissingDataset) {
  auto ps = Polystore::Open(Path("poly"));
  EXPECT_TRUE(ps->Lookup("ghost").status().IsNotFound());
  EXPECT_FALSE(ps->ReadAsTable("ghost").ok());
}

TEST_F(PolystoreTest, DatasetNamesSorted) {
  auto ps = Polystore::Open(Path("poly"));
  ASSERT_TRUE(ps->StoreObject("zeta", "z.csv", "a\n1\n").ok());
  ASSERT_TRUE(ps->StoreObject("alpha", "a.csv", "a\n1\n").ok());
  EXPECT_EQ(ps->DatasetNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(RelationalStoreTest, CreateDropGet) {
  RelationalStore store;
  auto t = table::Table::FromCsv("t", "a\n1\n");
  ASSERT_TRUE(store.CreateTable(*t).ok());
  EXPECT_TRUE(store.CreateTable(*t).IsAlreadyExists());
  ASSERT_TRUE(store.GetTable("t").ok());
  ASSERT_TRUE(store.DropTable("t").ok());
  EXPECT_TRUE(store.GetTable("t").status().IsNotFound());
  EXPECT_TRUE(store.DropTable("t").IsNotFound());
}

// ------------------------------------------- Crash/durability regressions

TEST_F(ObjectStoreTest, ConcurrentPutsToSameKeyNeverCollide) {
  // Regression: the old fixed `path + ".tmp"` staging name let concurrent
  // Puts to one key clobber each other's staging file — a reader could see
  // a payload interleaved from two writers, or a Put could fail spuriously.
  auto store = ObjectStore::Open(Path("objects"));
  ASSERT_TRUE(store.ok());
  constexpr int kWriters = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> writers;
  std::vector<Status> results(kWriters, Status::OK());
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string payload(1000, static_cast<char>('a' + w));
      for (int r = 0; r < kRounds && results[w].ok(); ++r) {
        results[w] = store->Put("contested/key", payload);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(results[w].ok()) << "writer " << w << " failed: "
                                 << results[w].message();
  }
  // The surviving object is exactly one writer's payload, never a mix.
  auto got = store->Get("contested/key");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1000u);
  EXPECT_EQ(std::set<char>(got->begin(), got->end()).size(), 1u);
  // No staging litter left behind, on disk or in listings.
  for (const auto& entry :
       fs::recursive_directory_iterator(Path("objects"))) {
    EXPECT_EQ(entry.path().extension(), "") << entry.path();
  }
  auto listed = store->List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].key, "contested/key");
}

TEST_F(KvStoreTest, WritesAfterFlushSurviveReopen) {
  // Regression for the WAL-offset audit: Flush truncates the WAL while the
  // append handle stays open; a write issued after the truncate must land
  // at the new end of file (O_APPEND semantics), not at a stale offset that
  // would leave a zero-filled hole no recovery could parse past.
  {
    auto store = KvStore::Open(Path("db"));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("flushed", "into-run").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put("after-flush", "wal-only").ok());
    ASSERT_TRUE((*store)->Delete("flushed").ok());
  }
  auto reopened = KvStore::Open(Path("db"));
  ASSERT_TRUE(reopened.ok());
  auto after = (*reopened)->Get("after-flush");
  ASSERT_TRUE(after.ok()) << "post-flush WAL write lost on reopen";
  EXPECT_EQ(*after, "wal-only");
  EXPECT_FALSE((*reopened)->Get("flushed").ok())
      << "post-flush WAL tombstone lost on reopen";
}

TEST_F(KvStoreTest, CompactionSurvivesReopenWithoutResurrectingDeletes) {
  {
    auto store = KvStore::Open(Path("db"));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("doomed", "old").ok());
    ASSERT_TRUE((*store)->Put("kept", "yes").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Delete("doomed").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Compact().ok());
    EXPECT_EQ((*store)->num_runs(), 1u);
  }
  auto reopened = KvStore::Open(Path("db"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->Get("doomed").ok())
      << "deleted key resurrected across compact + reopen";
  auto kept = (*reopened)->Get("kept");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, "yes");
}

TEST_F(KvStoreTest, TornWalTailIsTruncatedOnRecovery) {
  {
    auto store = KvStore::Open(Path("db"));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("good", "value").ok());
  }
  // Simulate a torn append: garbage bytes after the last complete record.
  {
    std::ofstream wal(Path("db") + "/wal.log",
                      std::ios::binary | std::ios::app);
    wal << "\x13\x37garbage-torn-tail";
  }
  auto reopened = KvStore::Open(Path("db"));
  ASSERT_TRUE(reopened.ok()) << "recovery choked on a torn WAL tail: "
                             << reopened.status().message();
  auto got = (*reopened)->Get("good");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
  // The torn tail is gone for good: another cycle stays clean.
  ASSERT_TRUE((*reopened)->Put("more", "data").ok());
  reopened->reset();
  auto again = KvStore::Open(Path("db"));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->Get("good").ok());
  EXPECT_TRUE((*again)->Get("more").ok());
}

TEST_F(KvStoreTest, CorruptRunTailIsTruncatedOnRecovery) {
  {
    auto store = KvStore::Open(Path("db"));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Flip a byte in the run's last record: the CRC must catch it and
  // recovery must truncate rather than serve the corrupted value.
  const std::string run_path = Path("db") + "/run-0.dat";
  ASSERT_TRUE(fs::exists(run_path));
  {
    std::fstream run(run_path,
                     std::ios::binary | std::ios::in | std::ios::out);
    run.seekp(-1, std::ios::end);
    run.put('\xFF');
  }
  auto reopened = KvStore::Open(Path("db"));
  ASSERT_TRUE(reopened.ok()) << "recovery choked on a corrupt run tail: "
                             << reopened.status().message();
  EXPECT_FALSE((*reopened)->Get("a").ok())
      << "corrupted record served as if valid";
  // The store stays writable and consistent afterwards.
  ASSERT_TRUE((*reopened)->Put("a", "fresh").ok());
  auto got = (*reopened)->Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "fresh");
}

// ------------------------------------------------- GraphStore persistence

TEST(GraphStoreTest, ExportImportRoundTripsIdsAndProperties) {
  GraphStore g;
  json::Object props;
  props.Set("format", "csv");
  auto a = g.AddNode("dataset", std::move(props));
  auto b = g.AddNode("dataset");
  auto e = g.AddEdge(a, b, "derived_from");
  ASSERT_TRUE(e.ok());
  auto imported = GraphStore::ImportJson(g.ExportJson());
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported->num_nodes(), 2u);
  EXPECT_EQ(imported->num_edges(), 1u);
  auto node = imported->GetNode(a);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->label, "dataset");
  const json::Value* fmt = node->properties.Find("format");
  ASSERT_NE(fmt, nullptr);
  EXPECT_EQ(fmt->as_string(), "csv");
  // Fresh ids continue after the imported ones — no id reuse.
  auto c = imported->AddNode("dataset");
  EXPECT_GT(c, b);
}

TEST(GraphStoreTest, ImportRejectsMalformedSnapshots) {
  EXPECT_FALSE(GraphStore::ImportJson(json::Value("not an object")).ok());
  auto missing_arrays = json::Parse(R"({"nodes": 3})");
  ASSERT_TRUE(missing_arrays.ok());
  EXPECT_FALSE(GraphStore::ImportJson(*missing_arrays).ok());
  auto dangling_edge = json::Parse(
      R"({"nodes":[{"id":1,"label":"n"}],
          "edges":[{"id":1,"from":1,"to":99,"label":"e"}]})");
  ASSERT_TRUE(dangling_edge.ok());
  EXPECT_FALSE(GraphStore::ImportJson(*dangling_edge).ok());
}

}  // namespace
}  // namespace lakekit::storage
