// Tests for the scan acceleration layer (DESIGN.md §9): the decoded-table
// cache, generation-keyed invalidation through the polystore and object
// store, the cache-hit fast path bypassing the circuit breaker, and
// zone-map morsel pruning through the federated engine.

#include "query/table_cache.h"

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "query/federation.h"
#include "query/source.h"
#include "storage/polystore.h"
#include "table/table.h"

namespace lakekit::query {
namespace {

using storage::Polystore;
using table::Table;
using table::Value;

/// Fresh temp directory per test (removed afterwards) for the polystore's
/// object tier.
class PolystoreGenerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lakekit_cache_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  std::filesystem::path dir_;
};

Table People() {
  return *Table::FromCsv(
      "people",
      "id,name,age,city\n1,ada,36,delft\n2,bob,41,leiden\n3,eve,29,delft\n"
      "4,dan,,leiden\n");
}

/// A read-only in-memory source with an explicit per-dataset generation —
/// the minimal mutable TableSource.
class VersionedSource : public TableSource {
 public:
  void Set(const std::string& name, Table t) {
    tables_.insert_or_assign(name, std::move(t));
    ++generations_[name];
  }

  Result<Table> ReadAsTable(std::string_view name) override {
    auto it = tables_.find(std::string(name));
    if (it == tables_.end()) {
      return Status::NotFound("no dataset '" + std::string(name) + "'");
    }
    return it->second;
  }

  uint64_t Generation(std::string_view name) override {
    auto it = generations_.find(std::string(name));
    return it == generations_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, Table> tables_;
  std::map<std::string, uint64_t> generations_;
};

TEST(TableCacheTest, PutThenFindSameGeneration) {
  TableCache cache;
  EXPECT_FALSE(cache.Find("people", 1));
  TableCache::Entry put = cache.Put("people", 1, People());
  ASSERT_TRUE(put);
  EXPECT_EQ(put->table.num_rows(), 4u);
  // Zone map built at admission: one chunk (4 rows < kMorselSize), all
  // columns covered.
  EXPECT_EQ(put->zones.num_chunks(), 1u);
  EXPECT_EQ(put->zones.num_columns(), put->table.num_columns());
  TableCache::Entry found = cache.Find("people", 1);
  ASSERT_TRUE(found);
  EXPECT_TRUE(found->table == put->table);
}

TEST(TableCacheTest, DifferentGenerationMisses) {
  TableCache cache;
  cache.Put("people", 1, People());
  EXPECT_TRUE(cache.Find("people", 1));
  EXPECT_FALSE(cache.Find("people", 2));
  // Names that share a digit-boundary with the generation must not alias:
  // ("t", 12) vs ("t1", 2).
  cache.Put("t", 12, People());
  EXPECT_FALSE(cache.Find("t1", 2));
}

TEST(TableCacheTest, ChargeIsBoundedByCapacity) {
  TableCacheOptions options;
  options.capacity_bytes = 4096;
  options.shards = 1;
  TableCache cache(options);
  for (int i = 0; i < 64; ++i) {
    cache.Put("d" + std::to_string(i), 0, People());
  }
  EXPECT_LE(cache.stats().charge, options.capacity_bytes);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(PolystoreGenerationTest, StoreAndBumpAdvanceGeneration) {
  auto opened = Polystore::Open(Path("lake"));
  ASSERT_TRUE(opened.ok());
  Polystore& store = *opened;
  const uint64_t before = store.generation("people");
  ASSERT_TRUE(store.StoreTable("people", People()).ok());
  const uint64_t after_store = store.generation("people");
  EXPECT_NE(before, after_store);
  store.BumpGeneration("people");
  EXPECT_NE(after_store, store.generation("people"));
}

TEST_F(PolystoreGenerationTest, DirectObjectWriteChangesGeneration) {
  auto opened = Polystore::Open(Path("lake"));
  ASSERT_TRUE(opened.ok());
  Polystore& store = *opened;
  ASSERT_TRUE(
      store.StoreObject("logs", "raw/logs.csv", "id,msg\n1,boot\n").ok());
  const uint64_t before = store.generation("logs");
  // A write issued straight against the object tier — no polystore-level
  // bump — must still change the generation via the per-key etag.
  ASSERT_TRUE(store.objects().Put("raw/logs.csv", "id,msg\n1,boot\n2,up\n")
                  .ok());
  EXPECT_NE(before, store.generation("logs"));
}

/// Engine + cache over a VersionedSource wrapped in a FlakySource, so tests
/// can count physical reads and script failures.
struct CachedRig {
  explicit CachedRig(size_t cache_bytes = 64u << 20) {
    source.Set("people", People());
    flaky = std::make_unique<FlakySource>(&source);
    TableCacheOptions copts;
    copts.capacity_bytes = cache_bytes;
    cache = std::make_unique<TableCache>(copts);
    FederatedEngineOptions options;
    options.retry.max_attempts = 1;
    options.breaker.failure_threshold = 2;
    options.table_cache = cache.get();
    engine = std::make_unique<FederatedEngine>(flaky.get(), options);
  }

  VersionedSource source;
  std::unique_ptr<FlakySource> flaky;
  std::unique_ptr<TableCache> cache;
  std::unique_ptr<FederatedEngine> engine;
};

constexpr const char* kPeopleSql = "SELECT name FROM people WHERE age > 30";

TEST(FederatedCacheTest, WarmScanSkipsSourceRead) {
  CachedRig rig;
  FederationStats cold;
  Result<Table> r1 = rig.engine->Query(kPeopleSql, {}, &cold);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_EQ(rig.flaky->reads("people"), 1u);

  FederationStats warm;
  Result<Table> r2 = rig.engine->Query(kPeopleSql, {}, &warm);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.cache_misses, 0u);
  // The physical read count did not move: the scan never reached the
  // source.
  EXPECT_EQ(rig.flaky->reads("people"), 1u);
  // Same bytes either way.
  EXPECT_TRUE(*r1 == *r2);
}

TEST(FederatedCacheTest, CacheHitBypassesBreakerAndFaults) {
  CachedRig rig;
  ASSERT_TRUE(rig.engine->Query(kPeopleSql, {}, nullptr).ok());  // warm
  // Every future read of the source fails hard. A cache-served query must
  // neither fail nor trip the breaker, because no read is ever admitted.
  SourceFaultProfile profile;
  profile.fail_next = 1000;
  rig.flaky->SetProfile("people", profile);
  for (int i = 0; i < 5; ++i) {
    FederationStats stats;
    Result<Table> r = rig.engine->Query(kPeopleSql, {}, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.breaker_rejections, 0u);
  }
  EXPECT_EQ(rig.engine->breaker_state("people"),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(rig.flaky->injected_failures("people"), 0u);
}

TEST(FederatedCacheTest, WriteInvalidatesCachedScan) {
  CachedRig rig;
  FederationStats cold;
  ASSERT_TRUE(rig.engine->Query(kPeopleSql, {}, &cold).ok());
  EXPECT_EQ(cold.cache_misses, 1u);

  // Overwrite the dataset: the generation bump makes the old entry
  // unreachable, so the next query re-reads and sees the new rows.
  Table next = *Table::FromCsv("people",
                               "id,name,age,city\n9,zoe,52,delft\n");
  rig.source.Set("people", std::move(next));
  FederationStats stats;
  Result<Table> r = rig.engine->Query(kPeopleSql, {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 1u);
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0)[0], Value("zoe"));
  EXPECT_EQ(rig.flaky->reads("people"), 2u);
}

TEST_F(PolystoreGenerationTest, WriteInvalidatesThroughEngine) {
  auto opened = Polystore::Open(Path("lake"));
  ASSERT_TRUE(opened.ok());
  Polystore& store = *opened;
  ASSERT_TRUE(store.StoreTable("people", People()).ok());
  TableCache cache;
  FederatedEngineOptions options;
  options.table_cache = &cache;
  FederatedEngine engine(&store, options);

  FederationStats cold;
  ASSERT_TRUE(engine.Query(kPeopleSql, {}, &cold).ok());
  EXPECT_EQ(cold.cache_misses, 1u);
  FederationStats warm;
  ASSERT_TRUE(engine.Query(kPeopleSql, {}, &warm).ok());
  EXPECT_EQ(warm.cache_hits, 1u);

  // Replace the backing table. ReplaceTable bypasses the polystore's
  // ingestion path, so the writer bumps the generation explicitly.
  Table next = *Table::FromCsv("people",
                               "id,name,age,city\n9,zoe,52,delft\n");
  ASSERT_TRUE(store.relational().ReplaceTable(std::move(next)).ok());
  store.BumpGeneration("people");

  FederationStats after;
  Result<Table> r = engine.Query(kPeopleSql, {}, &after);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(after.cache_hits, 0u);
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0)[0], Value("zoe"));
}

TEST(FederatedCacheTest, SelectiveScanPrunesMorsels) {
  // A clustered table spanning many morsels: id ascends, so each morsel's
  // [min, max] id range is tight and a point predicate rules most out.
  CachedRig rig;
  table::Schema schema;
  schema.AddField({"id", table::DataType::kInt64});
  Table nums("nums", schema);
  constexpr size_t kRows = 5 * kMorselSize;
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(nums.AppendRow({Value(static_cast<int64_t>(i))}).ok());
  }
  rig.source.Set("nums", std::move(nums));

  const std::string sql = "SELECT id FROM nums WHERE id = 3";
  FederationStats cold;
  Result<Table> r = rig.engine->Query(sql, {}, &cold);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  // Zones exist from admission, so even the cold scan prunes: only the
  // first morsel can contain id 3.
  EXPECT_EQ(cold.morsels_pruned, 4u);

  FederationStats warm;
  Result<Table> r2 = rig.engine->Query(sql, {}, &warm);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.morsels_pruned, 4u);
  EXPECT_TRUE(*r == *r2);
}

}  // namespace
}  // namespace lakekit::query
