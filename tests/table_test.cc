#include <gtest/gtest.h>

#include "json/parser.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace lakekit::table {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("x").as_string(), "x");
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).as_double(), 3.0);  // widening
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_NE(Value(int64_t{2}), Value(2.5));
  EXPECT_NE(Value("2"), Value(int64_t{2}));
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value(false));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(2.0), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(DataTypeTest, NameRoundTrip) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kDouble,
                     DataType::kString}) {
    EXPECT_EQ(DataTypeFromName(DataTypeName(t)), t);
  }
}

TEST(SchemaTest, IndexLookup) {
  Schema s({{"id", DataType::kInt64, false}, {"name", DataType::kString, true}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(*s.IndexOf("name"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
  EXPECT_TRUE(s.HasField("id"));
  EXPECT_EQ(s.ToString(), "id:int64,name:string");
}

TEST(TableTest, AppendAndAccess) {
  Table t("people", Schema({{"id", DataType::kInt64, false},
                            {"name", DataType::kString, true}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("ada")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value("bob")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.at(1, 1).as_string(), "bob");
  EXPECT_EQ(t.Row(0)[0].as_int(), 1);
  EXPECT_EQ(*t.ColumnIndex("name"), 1u);
  EXPECT_FALSE(t.ColumnIndex("zzz").ok());
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t("t", Schema({{"a", DataType::kInt64, true}}));
  EXPECT_FALSE(t.AppendRow({Value(1), Value(2)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(SniffTypeTest, DetectsTypes) {
  EXPECT_EQ(SniffType({"1", "2", "-3"}), DataType::kInt64);
  EXPECT_EQ(SniffType({"1.5", "2"}), DataType::kDouble);
  EXPECT_EQ(SniffType({"true", "false"}), DataType::kBool);
  EXPECT_EQ(SniffType({"x", "1"}), DataType::kString);
  EXPECT_EQ(SniffType({"", ""}), DataType::kString);
  EXPECT_EQ(SniffType({"1", "", "2"}), DataType::kInt64);  // empties are NULLs
}

TEST(TableFromCsvTest, TypedColumns) {
  auto r = Table::FromCsv("t", "id,score,name\n1,3.5,ada\n2,4.0,bob\n");
  ASSERT_TRUE(r.ok());
  const Table& t = *r;
  EXPECT_EQ(t.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t.schema().field(2).type, DataType::kString);
  EXPECT_EQ(t.at(0, 0).as_int(), 1);
  EXPECT_DOUBLE_EQ(t.at(1, 1).as_double(), 4.0);
}

TEST(TableFromCsvTest, EmptyFieldsBecomeNull) {
  auto r = Table::FromCsv("t", "a,b\n1,\n,x\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->at(0, 1).is_null());
  EXPECT_TRUE(r->at(1, 0).is_null());
}

TEST(TableCsvRoundTripTest, PreservesData) {
  auto t = Table::FromCsv("t", "id,name\n1,ada\n2,\"a,b\"\n");
  ASSERT_TRUE(t.ok());
  auto t2 = Table::FromCsv("t", t->ToCsv());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t, *t2);
}

TEST(TableFromJsonTest, UnionSchemaAndNulls) {
  auto doc = json::Parse(
      R"([{"a": 1, "b": "x"}, {"b": "y", "c": 2.5}, {"a": 3}])");
  ASSERT_TRUE(doc.ok());
  auto r = Table::FromJson("t", *doc);
  ASSERT_TRUE(r.ok());
  const Table& t = *r;
  EXPECT_EQ(t.schema().FieldNames(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.at(1, 0).is_null());   // row 2 has no "a"
  EXPECT_TRUE(t.at(2, 1).is_null());   // row 3 has no "b"
  EXPECT_EQ(t.at(2, 0).as_int(), 3);
}

TEST(TableFromJsonTest, MixedIntDoubleWidensToDouble) {
  auto doc = json::Parse(R"([{"x": 1}, {"x": 2.5}])");
  auto r = Table::FromJson("t", *doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().field(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(r->at(0, 0).as_double(), 1.0);
}

TEST(TableFromJsonTest, NestedValuesFlattenToJsonStrings) {
  auto doc = json::Parse(R"([{"x": {"nested": true}}])");
  auto r = Table::FromJson("t", *doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().field(0).type, DataType::kString);
  EXPECT_EQ(r->at(0, 0).as_string(), R"({"nested":true})");
}

TEST(TableFromJsonTest, RejectsNonArray) {
  auto doc = json::Parse(R"({"a": 1})");
  EXPECT_FALSE(Table::FromJson("t", *doc).ok());
}

TEST(TableJsonRoundTripTest, PreservesData) {
  auto t = Table::FromCsv("t", "id,name,score\n1,ada,2.5\n2,bob,\n");
  ASSERT_TRUE(t.ok());
  auto t2 = Table::FromJson("t", t->ToJson());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t->num_rows(), t2->num_rows());
  EXPECT_EQ(t->at(0, 1), t2->at(0, 1));
  EXPECT_TRUE(t2->at(1, 2).is_null());
}

}  // namespace
}  // namespace lakekit::table
