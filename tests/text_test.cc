#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "text/embedding.h"
#include "text/ks_test.h"
#include "text/levenshtein.h"
#include "text/lsh.h"
#include "text/minhash.h"
#include "text/tfidf.h"
#include "text/tokenize.h"

namespace lakekit::text {
namespace {

// ---------------------------------------------------------------- tokenize

TEST(TokenizeTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Vehicle_Color-2024"),
            (std::vector<std::string>{"vehicle", "color", "2024"}));
  EXPECT_EQ(Tokenize("  "), (std::vector<std::string>{}));
  EXPECT_EQ(Tokenize("one"), (std::vector<std::string>{"one"}));
}

TEST(QGramsTest, PaddedGrams) {
  auto grams = QGrams("ab", 3);
  // padded: "$$ab$$" -> $$a, $ab, ab$, b$$
  EXPECT_EQ(grams, (std::vector<std::string>{"$$a", "$ab", "ab$", "b$$"}));
}

TEST(QGramsTest, LowercasesInput) {
  EXPECT_EQ(QGrams("AB", 2), QGrams("ab", 2));
}

TEST(JaccardTest, ExactValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"c"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  // Duplicates are treated as sets.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a"}, {"a"}), 1.0);
}

// ---------------------------------------------------------------- minhash

std::vector<std::string> MakeSet(int begin, int end) {
  std::vector<std::string> out;
  for (int i = begin; i < end; ++i) out.push_back("item" + std::to_string(i));
  return out;
}

TEST(MinHashTest, IdenticalSetsFullAgreement) {
  MinHasher hasher(64);
  auto s = MakeSet(0, 100);
  EXPECT_DOUBLE_EQ(hasher.Compute(s).EstimateJaccard(hasher.Compute(s)), 1.0);
}

TEST(MinHashTest, DisjointSetsNearZero) {
  MinHasher hasher(128);
  auto a = hasher.Compute(MakeSet(0, 200));
  auto b = hasher.Compute(MakeSet(200, 400));
  EXPECT_LT(a.EstimateJaccard(b), 0.05);
}

// Property: MinHash estimate converges to the true Jaccard similarity.
class MinHashAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(MinHashAccuracyTest, EstimatesTrueJaccard) {
  const double target = GetParam();
  // Build two sets of 1000 elements with |A ∩ B| / |A ∪ B| == target:
  // overlap/(2000 - overlap) = target => overlap = 2000*target/(1+target).
  const int total = 1000;
  const int overlap =
      static_cast<int>(std::round(2 * total * target / (1 + target)));
  std::vector<std::string> a = MakeSet(0, total);
  std::vector<std::string> b = MakeSet(total - overlap, 2 * total - overlap);
  const double true_jaccard =
      static_cast<double>(overlap) / static_cast<double>(2 * total - overlap);
  MinHasher hasher(256);
  double est = hasher.Compute(a).EstimateJaccard(hasher.Compute(b));
  // Standard error ~ sqrt(j(1-j)/k) ≈ 0.03 for k=256; allow 4 sigma.
  EXPECT_NEAR(est, true_jaccard, 0.13);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinHashAccuracyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(MinHashTest, FromHashesMatchesFromStrings) {
  MinHasher hasher(32);
  std::vector<std::string> elems = MakeSet(0, 50);
  std::vector<uint64_t> hashes;
  for (const auto& e : elems) hashes.push_back(Fnv1a64(e));
  EXPECT_EQ(hasher.Compute(elems).values(),
            hasher.ComputeFromHashes(hashes).values());
}

// ---------------------------------------------------------------- LSH

TEST(LshTest, SimilarItemsCollide) {
  MinHasher hasher(128);
  LshIndex index(/*bands=*/32, /*rows=*/4);
  auto base = MakeSet(0, 1000);
  index.Insert(1, hasher.Compute(base));
  // 90% overlapping set should collide with very high probability.
  auto similar = MakeSet(0, 900);
  for (int i = 0; i < 100; ++i) similar.push_back("extra" + std::to_string(i));
  auto candidates = index.Query(hasher.Compute(similar));
  EXPECT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);
}

TEST(LshTest, DissimilarItemsRarelyCollide) {
  MinHasher hasher(128);
  LshIndex index(32, 4);
  Rng rng(5);
  for (uint64_t id = 0; id < 50; ++id) {
    std::vector<std::string> s;
    for (int i = 0; i < 100; ++i) s.push_back(rng.NextWord(10));
    index.Insert(id, hasher.Compute(s));
  }
  std::vector<std::string> probe;
  for (int i = 0; i < 100; ++i) probe.push_back(rng.NextWord(10));
  auto candidates = index.Query(hasher.Compute(probe));
  EXPECT_LT(candidates.size(), 5u);
}

TEST(LshTest, CollisionProbabilitySCurve) {
  LshIndex index(32, 4);
  EXPECT_LT(index.CollisionProbability(0.1), 0.15);
  EXPECT_GT(index.CollisionProbability(0.9), 0.99);
  // Monotone increasing.
  double prev = 0;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    double p = index.CollisionProbability(s);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

// ---------------------------------------------------------------- TF-IDF

TEST(TfIdfTest, IdenticalDocsCosineOne) {
  TfIdfVectorizer v;
  size_t a = v.AddDocument({"data", "lake"});
  size_t b = v.AddDocument({"data", "lake"});
  EXPECT_NEAR(CosineSimilarity(v.Vectorize(a), v.Vectorize(b)), 1.0, 1e-9);
}

TEST(TfIdfTest, DisjointDocsCosineZero) {
  TfIdfVectorizer v;
  size_t a = v.AddDocument({"alpha"});
  size_t b = v.AddDocument({"beta"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(v.Vectorize(a), v.Vectorize(b)), 0.0);
}

TEST(TfIdfTest, RareTokensWeighMore) {
  TfIdfVectorizer v;
  // "common" appears everywhere; "rare" once.
  for (int i = 0; i < 9; ++i) v.AddDocument({"common"});
  size_t d = v.AddDocument({"common", "rare"});
  SparseVector vec = v.Vectorize(d);
  EXPECT_GT(vec.at("rare"), vec.at("common"));
}

TEST(TfIdfTest, QueryVectorization) {
  TfIdfVectorizer v;
  size_t a = v.AddDocument({"flight", "delay", "airport"});
  v.AddDocument({"hospital", "patient"});
  SparseVector q = v.VectorizeQuery({"flight", "airport"});
  EXPECT_GT(CosineSimilarity(q, v.Vectorize(a)), 0.5);
}

// ---------------------------------------------------------------- embedding

TEST(EmbeddingTest, DeterministicAndUnitNorm) {
  EmbeddingModel model(32);
  DenseVector a = model.Embed("airport");
  DenseVector b = model.Embed("airport");
  EXPECT_EQ(a, b);
  double norm = 0;
  for (double x : a) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(EmbeddingTest, SameDomainTokensAreClose) {
  EmbeddingModel model(64);
  model.RegisterDomain("color", {"red", "green", "blue"});
  model.RegisterDomain("city", {"paris", "tokyo"});
  double same = CosineSimilarity(model.Embed("red"), model.Embed("blue"));
  double cross = CosineSimilarity(model.Embed("red"), model.Embed("paris"));
  double unrelated =
      CosineSimilarity(model.Embed("red"), model.Embed("zebra123"));
  EXPECT_GT(same, 0.5);
  EXPECT_GT(same, cross + 0.2);
  EXPECT_LT(std::abs(unrelated), 0.5);
}

TEST(EmbeddingTest, EmbedAllAveragesAndNormalizes) {
  EmbeddingModel model(32);
  DenseVector v = model.EmbedAll({"a", "b", "c"});
  double norm = 0;
  for (double x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-9);
  EXPECT_TRUE(model.EmbedAll({}).size() == 32);
}

TEST(EmbeddingTest, EuclideanDistanceBasics) {
  DenseVector a{0, 0};
  DenseVector b{3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

// ---------------------------------------------------------------- edit dist

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("abcdef", "azced"),
            LevenshteinDistance("azced", "abcdef"));
}

TEST(LevenshteinTest, NormalizedSimilarity) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

// ---------------------------------------------------------------- KS

TEST(KsTest, IdenticalSamplesZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsTest, DisjointSupportsNearOne) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(KsStatistic(a, b), 1.0);
}

TEST(KsTest, EmptySampleIsMaxDistance) {
  EXPECT_DOUBLE_EQ(KsStatistic({}, {1.0}), 1.0);
}

TEST(KsTest, SameDistributionSmallStatistic) {
  Rng rng(31);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian());
  }
  EXPECT_LT(KsStatistic(a, b), 0.06);
}

TEST(KsTest, ShiftedDistributionLargeStatistic) {
  Rng rng(37);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian() + 2.0);
  }
  EXPECT_GT(KsStatistic(a, b), 0.5);
}

TEST(KsTest, PValueBehaviour) {
  // Large statistic, decent samples -> tiny p-value.
  EXPECT_LT(KsPValue(0.8, 100, 100), 1e-6);
  // Tiny statistic -> p close to 1.
  EXPECT_GT(KsPValue(0.01, 100, 100), 0.9);
}

}  // namespace
}  // namespace lakekit::text
