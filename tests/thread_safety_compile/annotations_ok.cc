// Positive control for the thread-safety negative-compile fixture: a
// correctly locked counter over the annotated primitives. This file MUST
// compile under `-Werror=thread-safety`; if it stops compiling, the two
// negative fixtures (unguarded_access.cc, missing_requires.cc) would
// "fail to compile" for the wrong reason and prove nothing.

#include "common/mutex.h"
#include "common/rw_lock.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    lakekit::MutexLock lock(mu_);
    ++value_;
  }

  int Get() {
    lakekit::MutexLock lock(mu_);
    return value_;
  }

  void Reset() {
    lakekit::MutexLock lock(mu_);
    ResetLocked();
  }

 private:
  void ResetLocked() LAKEKIT_REQUIRES(mu_) { value_ = 0; }

  lakekit::Mutex mu_;
  int value_ LAKEKIT_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  void Publish(int v) {
    lakekit::WriterLock lock(mu_);
    published_ = v;
  }

  int Read() {
    lakekit::ReaderLock lock(mu_);
    return published_;
  }

 private:
  lakekit::WriterPriorityRwLock mu_;
  int published_ LAKEKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.Reset();
  Registry r;
  r.Publish(c.Get());
  return r.Read();
}
