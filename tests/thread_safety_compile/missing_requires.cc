// Negative-compile fixture: calls a LAKEKIT_REQUIRES(mu_) helper without
// holding the lock. Under Clang with `-Werror=thread-safety` this MUST
// fail to compile ("calling function 'ResetLocked' requires holding mutex
// 'mu_'"); the ctest entry passes only when that diagnostic appears.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Reset() {
    ResetLocked();  // BUG under analysis: caller does not hold mu_
  }

 private:
  void ResetLocked() LAKEKIT_REQUIRES(mu_) { value_ = 0; }

  lakekit::Mutex mu_;
  int value_ LAKEKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Reset();
  return 0;
}
