// Negative-compile fixture: writes a LAKEKIT_GUARDED_BY field without
// holding its mutex. Under Clang with `-Werror=thread-safety` this MUST
// fail to compile ("writing variable 'value_' requires holding mutex
// 'mu_'"); the ctest entry passes only when that diagnostic appears.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG under analysis: mu_ not held
  }

 private:
  lakekit::Mutex mu_;
  int value_ LAKEKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
