// The benchmark accuracy counters are only as good as the generators'
// planted ground truth — these tests pin the guarantees the generators make.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "ingest/log_template.h"
#include "workload/generator.h"

namespace lakekit::workload {
namespace {

// ---------------------------------------------------------------- joinable

double ExactJaccardOf(const table::Table& a, const std::string& col_a,
                      const table::Table& b, const std::string& col_b) {
  std::unordered_set<std::string> sa;
  std::unordered_set<std::string> sb;
  for (const auto& v : a.column(*a.schema().IndexOf(col_a))) {
    if (!v.is_null()) sa.insert(v.ToString());
  }
  for (const auto& v : b.column(*b.schema().IndexOf(col_b))) {
    if (!v.is_null()) sb.insert(v.ToString());
  }
  size_t inter = 0;
  for (const auto& v : sa) {
    if (sb.count(v) > 0) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

const table::Table& FindTable(const std::vector<table::Table>& tables,
                              const std::string& name) {
  for (const auto& t : tables) {
    if (t.name() == name) return t;
  }
  ADD_FAILURE() << "no table " << name;
  return tables.front();
}

TEST(JoinableLakeTest, PlantedPairsHaveTargetJaccard) {
  JoinableLakeOptions options;
  options.num_tables = 20;
  options.num_planted_pairs = 6;
  options.overlap_jaccard = 0.6;
  JoinableLake lake = MakeJoinableLake(options);
  ASSERT_EQ(lake.planted.size(), 6u);
  for (const PlantedPair& p : lake.planted) {
    double j = ExactJaccardOf(FindTable(lake.tables, p.table_a), p.column_a,
                              FindTable(lake.tables, p.table_b), p.column_b);
    EXPECT_NEAR(j, 0.6, 0.02) << p.table_a << "." << p.column_a;
  }
}

TEST(JoinableLakeTest, BackgroundColumnsAreDisjoint) {
  JoinableLakeOptions options;
  options.num_tables = 10;
  options.num_planted_pairs = 2;
  JoinableLake lake = MakeJoinableLake(options);
  std::set<std::string> planted_cols;
  for (const PlantedPair& p : lake.planted) {
    planted_cols.insert(p.table_a + "." + p.column_a);
    planted_cols.insert(p.table_b + "." + p.column_b);
  }
  // Any two non-planted text columns share no values.
  std::vector<std::pair<std::string, std::unordered_set<std::string>>> cols;
  for (const auto& t : lake.tables) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const auto& field = t.schema().field(c);
      if (field.type != table::DataType::kString) continue;
      std::string full = t.name() + "." + field.name;
      if (planted_cols.count(full) > 0) continue;
      std::unordered_set<std::string> values;
      for (const auto& v : t.column(c)) values.insert(v.ToString());
      cols.emplace_back(full, std::move(values));
    }
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      for (const std::string& v : cols[i].second) {
        EXPECT_EQ(cols[j].second.count(v), 0u)
            << cols[i].first << " and " << cols[j].first << " share " << v;
      }
    }
  }
}

TEST(JoinableLakeTest, IdenticalForAnyThreadCount) {
  // Parallel generation must not change the lake: each table derives its own
  // Rng from (seed, table index), so a 1-thread and a 4-thread build agree
  // cell for cell.
  JoinableLakeOptions options;
  options.num_tables = 12;
  options.num_planted_pairs = 4;
  ThreadPool one(1);
  ThreadPool four(4);
  JoinableLake a = MakeJoinableLake(options, &one);
  JoinableLake b = MakeJoinableLake(options, &four);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i], b.tables[i]) << a.tables[i].name();
  }
  ASSERT_EQ(a.planted.size(), b.planted.size());
  for (size_t i = 0; i < a.planted.size(); ++i) {
    EXPECT_EQ(a.planted[i].table_a, b.planted[i].table_a);
    EXPECT_EQ(a.planted[i].column_a, b.planted[i].column_a);
    EXPECT_EQ(a.planted[i].table_b, b.planted[i].table_b);
    EXPECT_EQ(a.planted[i].column_b, b.planted[i].column_b);
  }
}

TEST(JoinableLakeTest, DeterministicForSeed) {
  JoinableLakeOptions options;
  options.seed = 99;
  JoinableLake a = MakeJoinableLake(options);
  JoinableLake b = MakeJoinableLake(options);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i], b.tables[i]);
  }
  EXPECT_EQ(a.planted.size(), b.planted.size());
}

TEST(JoinableLakeTest, IdColumnsAreUniquePerTable) {
  JoinableLake lake = MakeJoinableLake({});
  for (const auto& t : lake.tables) {
    std::set<int64_t> ids;
    for (const auto& v : t.column(0)) {
      EXPECT_TRUE(ids.insert(v.as_int()).second);
    }
  }
}

// ---------------------------------------------------------------- union

TEST(UnionableLakeTest, GroupsShareSchemasAndDomains) {
  UnionableLakeOptions options;
  options.num_groups = 3;
  options.tables_per_group = 2;
  UnionableLake lake = MakeUnionableLake(options);
  ASSERT_EQ(lake.tables.size(), 6u);
  ASSERT_EQ(lake.group_of.size(), 6u);
  // Same group: identical schema. Different group: disjoint field names.
  EXPECT_EQ(lake.tables[0].schema(), lake.tables[1].schema());
  for (const auto& f : lake.tables[0].schema().fields()) {
    EXPECT_FALSE(lake.tables[2].schema().HasField(f.name));
  }
  // Values come from the declared domain.
  const auto& terms = lake.domains.at("domain_g0c0");
  std::set<std::string> domain_set(terms.begin(), terms.end());
  for (const auto& v : lake.tables[0].column(0)) {
    EXPECT_EQ(domain_set.count(v.ToString()), 1u);
  }
}

// ---------------------------------------------------------------- logs

TEST(LogCorpusTest, LinesMatchPlantedPatterns) {
  LogCorpusOptions options;
  options.num_templates = 5;
  options.total_lines = 500;
  LogCorpus corpus = MakeLogCorpus(options);
  ASSERT_EQ(corpus.planted_patterns.size(), 5u);
  size_t total = 0;
  for (size_t n : corpus.lines_per_pattern) total += n;
  EXPECT_EQ(total, 500u);
  // Every emitted line matches exactly one planted pattern.
  std::vector<ingest::LogTemplate> templates;
  for (const std::string& pattern : corpus.planted_patterns) {
    ingest::LogTemplate t;
    t.tokens = ingest::LogTemplateExtractor::TokenizeLine(pattern);
    templates.push_back(std::move(t));
  }
  size_t start = 0;
  size_t matched = 0;
  size_t lines = 0;
  while (start < corpus.text.size()) {
    size_t end = corpus.text.find('\n', start);
    if (end == std::string::npos) break;
    std::string line = corpus.text.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      if (ingest::LogTemplateExtractor::Match(templates, line)) ++matched;
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 500u);
  EXPECT_EQ(matched, 500u);
  // Popularity is sorted descending.
  for (size_t i = 1; i < corpus.lines_per_pattern.size(); ++i) {
    EXPECT_GE(corpus.lines_per_pattern[i - 1], corpus.lines_per_pattern[i]);
  }
}

// ---------------------------------------------------------------- domains

TEST(DomainLakeTest, HomographsLiveInTwoDomains) {
  DomainLakeOptions options;
  options.num_homographs = 2;
  DomainLake lake = MakeDomainLake(options);
  ASSERT_EQ(lake.homographs.size(), 2u);
  for (const std::string& h : lake.homographs) {
    size_t containing = 0;
    for (const auto& [domain, terms] : lake.domains) {
      for (const std::string& t : terms) {
        if (t == h) {
          ++containing;
          break;
        }
      }
    }
    EXPECT_EQ(containing, 2u) << h;
  }
}

// ---------------------------------------------------------------- dirty

TEST(DirtyTableTest, ViolationsAreExactlyPlanted) {
  DirtyTableOptions options;
  options.num_rows = 300;
  options.num_violations = 10;
  DirtyTable dirty = MakeDirtyTable(options);
  ASSERT_EQ(dirty.violation_rows.size(), 10u);
  size_t city_col = *dirty.table.schema().IndexOf("city");
  size_t zip_col = *dirty.table.schema().IndexOf("zip");
  std::set<size_t> planted(dirty.violation_rows.begin(),
                           dirty.violation_rows.end());
  for (size_t r = 0; r < dirty.table.num_rows(); ++r) {
    std::string city = dirty.table.at(r, city_col).as_string();
    std::string zip = dirty.table.at(r, zip_col).as_string();
    std::string expected_zip = "Z" + city.substr(4);  // city<i> -> Z<i>
    if (planted.count(r) > 0) {
      EXPECT_NE(zip, expected_zip) << "row " << r;
    } else {
      EXPECT_EQ(zip, expected_zip) << "row " << r;
    }
  }
}

// ---------------------------------------------------------------- evolving

TEST(EvolvingCorpusTest, ThreeVersionsWithDeclaredChanges) {
  EvolvingCorpusOptions options;
  options.docs_per_version = 10;
  EvolvingCorpus corpus = MakeEvolvingCorpus(options);
  EXPECT_EQ(corpus.documents.size(), 30u);
  EXPECT_EQ(corpus.planted_changes.size(), 3u);
  // Timestamps strictly increase.
  int64_t prev = -1;
  for (const auto& doc : corpus.documents) {
    int64_t ts = doc.GetInt("_ts");
    EXPECT_GT(ts, prev);
    prev = ts;
  }
  // First docs have "name"+"age", last docs have "full_name"+"email".
  EXPECT_NE(corpus.documents.front().Get("name"), nullptr);
  EXPECT_NE(corpus.documents.front().Get("age"), nullptr);
  EXPECT_NE(corpus.documents.back().Get("full_name"), nullptr);
  EXPECT_EQ(corpus.documents.back().Get("age"), nullptr);
}

}  // namespace
}  // namespace lakekit::workload
