#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and flag regressions.

Pairs benchmarks by name between a baseline and a contender run (both
produced by tools/bench/run_benches.sh via --benchmark_out_format=json),
prints a per-benchmark ratio table, and exits non-zero when any shared
benchmark slowed down by more than the threshold. New or vanished
benchmarks are reported but never fail the comparison — PRs add and
retire benchmarks all the time.

Usage:
  tools/bench/compare_benches.py BASELINE.json CONTENDER.json \
      [--threshold 0.10] [--metric real_time|cpu_time]

Exit codes: 0 ok, 1 regression over threshold, 2 usage/parse error.
"""

import argparse
import json
import sys

# Normalise every sample to nanoseconds so baseline and contender may
# disagree on --benchmark_time_unit.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_samples(path, metric):
    """Returns {benchmark name: time in ns} for per-iteration entries.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    collapsed to the mean; plain rows are used as-is.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    samples = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        name = b.get("run_name", b["name"])
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None or metric not in b:
            continue
        samples[name] = b[metric] * unit
    return samples


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:8.2f} {unit}"
    return f"{ns:8.2f} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("contender")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max allowed slowdown fraction before failing (default 0.10)",
    )
    parser.add_argument(
        "--metric",
        choices=["real_time", "cpu_time"],
        default="real_time",
        help="which timing to compare (default real_time)",
    )
    args = parser.parse_args()

    base = load_samples(args.baseline, args.metric)
    cont = load_samples(args.contender, args.metric)
    if not base:
        sys.exit(f"error: no usable benchmarks in {args.baseline}")
    if not cont:
        sys.exit(f"error: no usable benchmarks in {args.contender}")

    shared = sorted(base.keys() & cont.keys())
    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>11}  {'contender':>11}  ratio")
    for name in shared:
        ratio = cont[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {fmt_ns(base[name])}  {fmt_ns(cont[name])}"
            f"  {ratio:5.2f}x{flag}"
        )

    for name in sorted(cont.keys() - base.keys()):
        print(f"{name:<{width}}  {'(new)':>11}  {fmt_ns(cont[name])}")
    for name in sorted(base.keys() - cont.keys()):
        print(f"{name:<{width}}  {fmt_ns(base[name])}  {'(gone)':>11}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nok: no regression over {args.threshold:.0%} across "
          f"{len(shared)} shared benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
