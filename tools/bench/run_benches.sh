#!/usr/bin/env bash
# Runs every bench binary with machine-readable JSON output so perf
# trajectories can be diffed across PRs (EXPERIMENTS.md records the
# narrative; the JSON is the raw data).
#
# Usage: tools/bench/run_benches.sh [--only <bench_name>] [build_dir] \
#            [out_dir] [benchmark filter]
#   --only     run a single bench binary (e.g. --only bench_storage)
#              instead of all of them
#   build_dir  where the bench binaries live (default: build)
#   out_dir    where BENCH_<name>.json files are written (default:
#              bench-results)
#   filter     optional --benchmark_filter regex forwarded to every binary
#
# Examples — just the discovery corpus-build comparison:
#   tools/bench/run_benches.sh build bench-results 'CorpusBuild|LakeGen'
# — refresh only the storage tier's JSON:
#   tools/bench/run_benches.sh --only bench_storage
set -euo pipefail

ONLY=""
if [ "${1:-}" = "--only" ]; then
  ONLY="${2:?--only requires a bench name, e.g. --only bench_storage}"
  shift 2
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
FILTER="${3:-}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build the project first" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

if [ -n "$ONLY" ] && [ ! -x "$BUILD_DIR/bench/$ONLY" ]; then
  echo "error: $BUILD_DIR/bench/$ONLY not found or not executable" >&2
  exit 1
fi

for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  if [ -n "$ONLY" ] && [ "$name" != "$ONLY" ]; then
    continue
  fi
  args=(
    "--benchmark_out=$OUT_DIR/BENCH_${name}.json"
    "--benchmark_out_format=json"
  )
  if [ -n "$FILTER" ]; then
    args+=("--benchmark_filter=$FILTER")
  fi
  echo "== $name"
  "$bin" "${args[@]}"
done

echo "JSON results in $OUT_DIR/"
