#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace lakekit::lint {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  return static_cast<size_t>(std::count(text.begin(), text.begin() + offset,
                                        '\n')) +
         1;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Length of a raw-string introducer (`R"`, `u8R"`, `uR"`, `UR"`, `LR"`) at
/// position `i`, or 0 when `i` does not start one. A preceding identifier
/// character means the R belongs to a longer identifier, not a literal.
size_t RawStringIntroLength(const std::string& s, size_t i) {
  if (i > 0 && IsIdentChar(s[i - 1])) return 0;
  static constexpr std::string_view kIntros[] = {"u8R\"", "uR\"", "UR\"",
                                                 "LR\"", "R\""};
  for (std::string_view intro : kIntros) {
    if (s.compare(i, intro.size(), intro) == 0) return intro.size();
  }
  return 0;
}

/// True when the token appears in `s` bounded by non-identifier characters.
bool HasToken(const std::string& s, std::string_view token) {
  size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const size_t end = pos + token.size();
    const bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    const bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Removes LAKEKIT_* annotation macros (with or without an argument list) so
/// declaration parsing sees only the underlying C++.
std::string StripAnnotations(const std::string& s) {
  static const std::regex kAnnotation(R"(LAKEKIT_[A-Z_]+(\s*\([^()]*\))?)");
  return std::regex_replace(s, kAnnotation, " ");
}

/// Removes template argument lists so `std::deque<std::function<void()>> q_`
/// parses as a data member, not a function declaration.
std::string RemoveAngleBlocks(const std::string& s) {
  std::string out;
  int depth = 0;
  for (char c : s) {
    if (c == '<') {
      ++depth;
      continue;
    }
    if (c == '>' && depth > 0) {
      --depth;
      continue;
    }
    if (depth == 0) out += c;
  }
  return out;
}

// ---------------------------------------------------------------------------
// mutex-annotated: class-scope scanner
// ---------------------------------------------------------------------------

struct MemberInfo {
  std::string name;
  size_t line = 0;      // 1-based line of the declaration's first token
  size_t end_line = 0;  // 1-based line of the terminating ';'
  bool guarded = false;
  bool capability = false;
  bool exempt_type = false;
  std::string raw_std_type;  // non-empty: a raw standard mutex type
};

struct Scope {
  bool is_class = false;
  bool exempt = false;  // the class IS a lock primitive (LAKEKIT_CAPABILITY)
  bool has_capability = false;
  std::vector<MemberInfo> members;
};

/// True when `stmt` is the head of a class/struct/union definition. Sets
/// `*exempt` when the head carries LAKEKIT_CAPABILITY /
/// LAKEKIT_SCOPED_CAPABILITY — those classes ARE the lock primitives and are
/// checked by the compiler, not the lint.
bool IsClassHead(const std::string& stmt, bool* exempt) {
  *exempt = stmt.find("LAKEKIT_CAPABILITY") != std::string::npos ||
            stmt.find("LAKEKIT_SCOPED_CAPABILITY") != std::string::npos;
  const std::string s = StripAnnotations(stmt);
  if (HasToken(s, "enum")) return false;
  // Use the LAST keyword so `template <class T> class Foo` keys off `Foo`,
  // while `template <class T> void f(T)` is rejected by the paren test.
  size_t best = std::string::npos;
  for (std::string_view kw : {"class", "struct", "union"}) {
    size_t pos = 0;
    while ((pos = s.find(kw, pos)) != std::string::npos) {
      const size_t end = pos + kw.size();
      if ((pos == 0 || !IsIdentChar(s[pos - 1])) &&
          (end >= s.size() || !IsIdentChar(s[end]))) {
        if (best == std::string::npos || pos > best) best = pos;
      }
      pos = end;
    }
  }
  if (best == std::string::npos) return false;
  // A class head's tail (name + base clause) never contains parentheses; a
  // function signature mentioning `class` in its template header does.
  return s.find('(', best) == std::string::npos;
}

const char* RawStdMutexType(const std::string& head) {
  for (const char* type : {"std::recursive_mutex", "std::shared_mutex",
                           "std::timed_mutex", "std::mutex"}) {
    if (head.find(type) != std::string::npos) return type;
  }
  return nullptr;
}

/// Classifies one class-scope statement, appending to `sc.members` when it
/// declares a data member. Function declarations (anything with parentheses
/// left after annotation- and template-stripping) are ignored.
void ClassifyMember(const std::string& raw_stmt, size_t start_line,
                    size_t end_line, Scope& sc) {
  const bool guarded =
      raw_stmt.find("LAKEKIT_GUARDED_BY") != std::string::npos ||
      raw_stmt.find("LAKEKIT_PT_GUARDED_BY") != std::string::npos;
  std::string s = StripAnnotations(raw_stmt);
  static const std::regex kAccessLabel(R"(\b(public|private|protected)\s*:)");
  s = std::regex_replace(s, kAccessLabel, " ");
  for (std::string_view kw :
       {"using", "typedef", "friend", "static_assert", "template", "operator",
        "static", "constexpr", "enum"}) {
    if (HasToken(s, kw)) return;
  }
  // The declarator head — everything before an initializer — is what decides
  // member vs. function; initializer expressions may contain anything.
  const std::string head = s.substr(0, s.find_first_of("={"));
  std::string flat = RemoveAngleBlocks(head);
  if (flat.find('(') != std::string::npos ||
      flat.find(')') != std::string::npos) {
    return;
  }
  static const std::regex kArrayExtent(R"(\[[^\]]*\])");
  flat = std::regex_replace(flat, kArrayExtent, " ");
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  std::string name;
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    name = it->str();
  }
  if (name.empty()) return;

  MemberInfo m;
  m.name = name;
  m.line = start_line;
  m.end_line = end_line;
  m.guarded = guarded;
  if (const char* raw = RawStdMutexType(head)) {
    m.raw_std_type = raw;
  } else if (HasToken(flat, "Mutex") || HasToken(flat, "WriterPriorityRwLock")) {
    m.capability = true;
    sc.has_capability = true;
  } else if (HasToken(flat, "CondVar") ||
             flat.find("condition_variable") != std::string::npos ||
             flat.find("atomic") != std::string::npos ||
             flat.find("once_flag") != std::string::npos) {
    // Self-synchronizing (atomics) or lock-adjacent (condvars) types carry
    // their own discipline; GUARDED_BY on them would be wrong or redundant.
    m.exempt_type = true;
  }
  sc.members.push_back(std::move(m));
}

static const std::regex kCommentLine(R"(^\s*(//|\*|/\*))");

/// A member is justified when its declaration lines or the comment block
/// directly above contain `unguarded:` (searched in the ORIGINAL lines —
/// the justification lives in a comment, which stripping blanks out).
bool HasUnguardedJustification(const std::vector<std::string>& lines,
                               const MemberInfo& m) {
  for (size_t ln = m.line; ln <= m.end_line && ln <= lines.size(); ++ln) {
    if (lines[ln - 1].find("unguarded:") != std::string::npos) return true;
  }
  for (size_t j = m.line; j > 1; --j) {
    const std::string& above = lines[j - 2];
    if (!std::regex_search(above, kCommentLine)) break;
    if (above.find("unguarded:") != std::string::npos) return true;
  }
  return false;
}

void FinalizeClass(const std::string& file, const Scope& sc,
                   const std::vector<std::string>& lines,
                   std::vector<Finding>& findings) {
  if (!sc.is_class || sc.exempt) return;
  for (const MemberInfo& m : sc.members) {
    if (!m.raw_std_type.empty()) {
      findings.push_back(
          {file, m.line, "mutex-annotated",
           "'" + m.name + "' is a " + m.raw_std_type +
               "; -Wthread-safety cannot see locks taken through it — use "
               "the annotated capabilities in common/mutex.h"});
    }
  }
  if (!sc.has_capability) return;
  for (const MemberInfo& m : sc.members) {
    if (m.capability || m.exempt_type || !m.raw_std_type.empty() || m.guarded) {
      continue;
    }
    if (HasUnguardedJustification(lines, m)) continue;
    findings.push_back(
        {file, m.line, "mutex-annotated",
         "field '" + m.name +
             "' shares its class with a lock capability but is neither "
             "LAKEKIT_GUARDED_BY nor justified with '// unguarded: <why>'"});
  }
}

/// Blanks preprocessor lines (including backslash continuations) so macro
/// bodies never reach the declaration scanner.
std::string BlankPreprocessorLines(const std::string& stripped) {
  std::vector<std::string> lines = SplitLines(stripped);
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t first = lines[i].find_first_not_of(" \t");
    if (first == std::string::npos || lines[i][first] != '#') continue;
    bool continues;
    do {
      continues = !lines[i].empty() && lines[i].back() == '\\';
      lines[i].assign(lines[i].size(), ' ');
      if (continues && i + 1 < lines.size()) ++i;
    } while (continues && i < lines.size());
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  size_t i = 0;
  const size_t n = out.size();
  while (i < n) {
    if (out.compare(i, 2, "//") == 0) {
      while (i < n && out[i] != '\n') out[i++] = ' ';
    } else if (out.compare(i, 2, "/*") == 0) {
      while (i < n && out.compare(i, 2, "*/") != 0) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) out[i] = out[i + 1] = ' ', i += 2;
    } else if (size_t intro = RawStringIntroLength(out, i); intro != 0) {
      // R"delim( ... )delim" — delimiter is 0–16 chars of anything but
      // parens, backslash, or whitespace.
      size_t j = i + intro;
      std::string delim;
      while (j < n && out[j] != '(' && delim.size() <= 16) delim += out[j++];
      if (j >= n || out[j] != '(') {
        // Not a well-formed raw literal after all; blank just the intro so
        // the quote cannot re-trigger the ordinary-string branch.
        for (size_t k = i; k < std::min(n, i + intro); ++k) out[k] = ' ';
        i += intro;
        continue;
      }
      const std::string closer = ")" + delim + "\"";
      size_t end = out.find(closer, j + 1);
      end = (end == std::string::npos) ? n : end + closer.size();
      for (size_t k = i; k < end; ++k) {
        if (out[k] != '\n') out[k] = ' ';
      }
      i = end;
    } else if (out[i] == '"') {
      out[i++] = ' ';
      while (i < n && out[i] != '"') {
        if (out[i] == '\\') out[i] = ' ', ++i;
        if (i < n && out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) out[i++] = ' ';
    } else if (out[i] == '\'') {
      if (i > 0 && IsIdentChar(out[i - 1])) {
        // Digit separator (1'000'000) or literal-suffix apostrophe, not a
        // character literal.
        ++i;
        continue;
      }
      out[i++] = ' ';
      while (i < n && out[i] != '\'') {
        if (out[i] == '\\') out[i] = ' ', ++i;
        if (i < n) out[i] = ' ';
        ++i;
      }
      if (i < n) out[i++] = ' ';
    } else {
      ++i;
    }
  }
  return out;
}

std::string ExpectedGuard(const std::string& rel_to_src) {
  std::string guard = "LAKEKIT_";
  for (char c : rel_to_src) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const std::string& file, const std::string& rel_to_src,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& findings) {
  const std::string expected = ExpectedGuard(rel_to_src);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("#ifndef", 0) != 0) continue;
    std::istringstream in(line);
    std::string directive, guard;
    in >> directive >> guard;
    if (guard != expected) {
      findings.push_back(
          {file, i + 1, "guard",
           "include guard '" + guard + "' should be '" + expected + "'"});
    } else if (i + 1 >= lines.size() ||
               lines[i + 1].rfind("#define " + expected, 0) != 0) {
      findings.push_back(
          {file, i + 2, "guard",
           "expected '#define " + expected + "' right after #ifndef"});
    }
    return;
  }
  findings.push_back({file, 1, "guard",
                      "header has no include guard (#ifndef " + expected +
                          ")"});
}

void CheckUsingNamespace(const std::string& file,
                         const std::vector<std::string>& stripped_lines,
                         std::vector<Finding>& findings) {
  static const std::regex kUsingNs(R"(^\s*using\s+namespace\b)");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    if (std::regex_search(stripped_lines[i], kUsingNs)) {
      findings.push_back(
          {file, i + 1, "using-ns",
           "'using namespace' in a header leaks into every includer"});
    }
  }
}

void CheckManualStatusChain(const std::string& file,
                            const std::string& stripped_text,
                            std::vector<Finding>& findings) {
  // `if (!s.ok()) return s;` — same identifier both times. The Result form
  // `if (!r.ok()) return r.status();` is likewise LAKEKIT_ASSIGN_OR_RETURN's
  // job. Matches across line breaks.
  static const std::regex kChain(
      R"(if\s*\(\s*!\s*(\w+)\.ok\s*\(\s*\)\s*\)\s*\{?\s*return\s+(\1|\1\.status\(\))\s*;)");
  auto begin = std::sregex_iterator(stripped_text.begin(), stripped_text.end(),
                                    kChain);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const size_t line =
        LineOfOffset(stripped_text, static_cast<size_t>(it->position()));
    findings.push_back(
        {file, line, "manual-chain",
         "use LAKEKIT_RETURN_IF_ERROR / LAKEKIT_ASSIGN_OR_RETURN instead of "
         "hand-rolled '" +
             it->str() + "'"});
  }
}

void CheckVoidDiscard(const std::string& file,
                      const std::vector<std::string>& stripped_lines,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& findings) {
  // `(void)` followed by anything but a bare identifier discards a value;
  // lakekit reserves that spelling for Status/Result ignores, which must be
  // justified with a `// ignore: <why>` comment — on the same line or in the
  // comment block directly above.
  static const std::regex kBareVar(R"(\(void\)\s*[A-Za-z_][A-Za-z0-9_]*\s*;)");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    // Search the stripped line so comments/strings never trigger the rule.
    const std::string& line = stripped_lines[i];
    if (line.find("(void)") == std::string::npos) continue;
    std::smatch m;
    if (std::regex_search(line, m, kBareVar)) continue;  // unused-var silence
    bool justified = lines[i].find("ignore:") != std::string::npos;
    for (size_t j = i; !justified && j > 0; --j) {
      const std::string& above = lines[j - 1];
      if (!std::regex_search(above, kCommentLine)) break;
      justified = above.find("ignore:") != std::string::npos;
    }
    if (!justified) {
      findings.push_back(
          {file, i + 1, "void-discard",
           "discarding a value via (void) needs a '// ignore: <why>' "
           "comment on this line or the comment block above"});
    }
  }
}

void CheckMutexAnnotated(const std::string& file,
                         const std::string& stripped_text,
                         const std::vector<std::string>& lines,
                         std::vector<Finding>& findings) {
  const std::string text = BlankPreprocessorLines(stripped_text);
  std::vector<Scope> stack(1);  // bottom element is file scope
  std::string stmt;
  size_t line = 1;
  size_t stmt_start = 1;
  bool stmt_has_content = false;
  int brace_init_depth = 0;
  int paren_depth = 0;  // unbalanced '(' within the current statement

  for (char c : text) {
    if (c == '\n') {
      ++line;
      stmt += c;
      continue;
    }
    if (brace_init_depth > 0) {
      stmt += c;
      if (c == '{') ++brace_init_depth;
      if (c == '}') --brace_init_depth;
      continue;
    }
    if (c == '{') {
      bool exempt = false;
      if (paren_depth > 0) {
        // A brace inside an argument list is a default-argument initializer
        // (`KvStoreOptions options = {}`), never a new scope.
        stmt += c;
        brace_init_depth = 1;
        continue;
      }
      if (IsClassHead(stmt, &exempt)) {
        Scope sc;
        sc.is_class = true;
        sc.exempt = exempt;
        stack.push_back(sc);
      } else if (stack.back().is_class && !HasToken(stmt, "namespace") &&
                 StripAnnotations(stmt).find('(') == std::string::npos) {
        // A parenless statement meeting `{` at class scope is a data member
        // with a brace initializer, not a new scope — consume it inline.
        stmt += c;
        brace_init_depth = 1;
        continue;
      } else {
        stack.emplace_back();  // function body / namespace / control block
      }
      stmt.clear();
      stmt_has_content = false;
      paren_depth = 0;
      continue;
    }
    if (c == '}') {
      if (stack.size() > 1) {
        FinalizeClass(file, stack.back(), lines, findings);
        stack.pop_back();
      }
      stmt.clear();
      stmt_has_content = false;
      paren_depth = 0;
      continue;
    }
    if (c == ';') {
      if (stack.back().is_class && stmt_has_content) {
        ClassifyMember(stmt, stmt_start, line, stack.back());
      }
      stmt.clear();
      stmt_has_content = false;
      paren_depth = 0;
      continue;
    }
    if (c == '(') ++paren_depth;
    if (c == ')' && paren_depth > 0) --paren_depth;
    if (!stmt_has_content && !std::isspace(static_cast<unsigned char>(c))) {
      stmt_has_content = true;
      stmt_start = line;
    }
    stmt += c;
  }
}

std::vector<Finding> LintText(const std::string& rel, const std::string& text) {
  std::vector<Finding> findings;
  const std::string stripped = StripCommentsAndStrings(text);
  const std::vector<std::string> lines = SplitLines(text);
  const std::vector<std::string> stripped_lines = SplitLines(stripped);
  const bool in_src = rel.rfind("src/", 0) == 0;
  const bool is_header = rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  if (is_header) {
    // Guard naming applies to library headers under src/.
    if (in_src) CheckHeaderGuard(rel, rel.substr(4), lines, findings);
    CheckUsingNamespace(rel, stripped_lines, findings);
  }
  CheckManualStatusChain(rel, stripped, findings);
  CheckVoidDiscard(rel, stripped_lines, lines, findings);
  if (in_src) CheckMutexAnnotated(rel, stripped, lines, findings);
  return findings;
}

std::vector<Finding> LintTree(const fs::path& root, size_t* files_checked) {
  std::vector<Finding> findings;
  const std::vector<fs::path> dirs = {"src", "tests", "bench", "examples",
                                      "tools"};
  size_t checked = 0;
  for (const fs::path& dir : dirs) {
    if (!fs::exists(root / dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      std::vector<Finding> file_findings = LintText(rel, buf.str());
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++checked;
    }
  }
  if (files_checked != nullptr) *files_checked = checked;
  return findings;
}

}  // namespace lakekit::lint
