#ifndef LAKEKIT_TOOLS_LINT_LINT_H_
#define LAKEKIT_TOOLS_LINT_LINT_H_

/// \file
/// lakekit repo lint: enforces conventions the compiler cannot.
///
/// Rules (see DESIGN.md "Error handling & analysis" and §4.2):
///   guard            src headers use `LAKEKIT_<PATH>_H_` include guards
///   using-ns         no `using namespace` at any scope in headers
///   manual-chain     `if (!s.ok()) return s;` must be LAKEKIT_RETURN_IF_ERROR
///   void-discard     `(void)call();` needs a `// ignore: <why>` justification
///                    on the same or preceding line (bare `(void)var;` casts
///                    that silence unused-variable warnings are exempt)
///   mutex-annotated  src/ classes may not hold raw std::mutex members (the
///                    thread-safety analysis cannot see locks taken through
///                    them — use the capabilities in common/mutex.h), and any
///                    field sharing a class with a lock capability must be
///                    LAKEKIT_GUARDED_BY or carry `// unguarded: <why>`
///
/// The rules live in a library (linked by both the `lakekit_lint` CLI and
/// tests/lint_test.cc) so each rule is testable against in-memory sources.

#include <filesystem>
#include <string>
#include <vector>

namespace lakekit::lint {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Blanks out comments and string literals (preserving newlines) so content
/// checks don't fire on documentation or on patterns quoted in strings.
/// Handles raw string literals with arbitrary delimiters and encoding
/// prefixes (R"x(...)x", u8R/uR/UR/LR) and does not mistake digit separators
/// (1'000'000) for character literals.
std::string StripCommentsAndStrings(const std::string& text);

/// common/status.h -> LAKEKIT_COMMON_STATUS_H_
std::string ExpectedGuard(const std::string& rel_to_src);

void CheckHeaderGuard(const std::string& file, const std::string& rel_to_src,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& findings);
void CheckUsingNamespace(const std::string& file,
                         const std::vector<std::string>& stripped_lines,
                         std::vector<Finding>& findings);
void CheckManualStatusChain(const std::string& file,
                            const std::string& stripped_text,
                            std::vector<Finding>& findings);
void CheckVoidDiscard(const std::string& file,
                      const std::vector<std::string>& stripped_lines,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& findings);
void CheckMutexAnnotated(const std::string& file,
                         const std::string& stripped_text,
                         const std::vector<std::string>& lines,
                         std::vector<Finding>& findings);

/// Runs every rule that applies to `rel` (path relative to the repo root,
/// forward slashes — rule selection keys off the `src/` prefix and the
/// extension) against `text`. This is the unit-test entry point.
std::vector<Finding> LintText(const std::string& rel, const std::string& text);

/// Walks src/tests/bench/examples/tools under `root` and lints every
/// .h/.cc/.cpp file. `files_checked` (optional) receives the file count.
std::vector<Finding> LintTree(const std::filesystem::path& root,
                              size_t* files_checked);

}  // namespace lakekit::lint

#endif  // LAKEKIT_TOOLS_LINT_LINT_H_
