// CLI driver for the lakekit repo lint. The rules themselves live in
// tools/lint/lint.{h,cc} so tests/lint_test.cc can exercise them against
// in-memory sources.
//
// Usage: lakekit_lint <repo-root>
// Exits 0 when the tree is clean, 1 with one finding per line otherwise.

#include <iostream>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: lakekit_lint <repo-root>\n";
    return 2;
  }
  size_t files_checked = 0;
  const std::vector<lakekit::lint::Finding> findings =
      lakekit::lint::LintTree(argv[1], &files_checked);
  for (const lakekit::lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
              << "\n";
  }
  std::cout << "lakekit_lint: " << files_checked << " files, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
