// lakekit repo lint: enforces conventions the compiler cannot.
//
// Rules (see DESIGN.md "Error handling & analysis"):
//   guard          src headers use `LAKEKIT_<PATH>_H_` include guards
//   using-ns       no `using namespace` at any scope in headers
//   manual-chain   `if (!s.ok()) return s;` must be LAKEKIT_RETURN_IF_ERROR
//   void-discard   `(void)call();` needs a `// ignore: <why>` justification
//                  on the same or preceding line (bare `(void)var;` casts that
//                  silence unused-variable warnings are exempt)
//
// Usage: lakekit_lint <repo-root>
// Exits 0 when the tree is clean, 1 with one finding per line otherwise.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const fs::path& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file.generic_string(), line, rule, message});
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  return static_cast<size_t>(std::count(text.begin(), text.begin() + offset,
                                        '\n')) +
         1;
}

/// Blanks out comments and string literals (preserving newlines) so content
/// checks don't fire on documentation or on patterns quoted in strings.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  size_t i = 0;
  const size_t n = out.size();
  while (i < n) {
    if (out.compare(i, 2, "//") == 0) {
      while (i < n && out[i] != '\n') out[i++] = ' ';
    } else if (out.compare(i, 2, "/*") == 0) {
      while (i < n && out.compare(i, 2, "*/") != 0) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) out[i] = out[i + 1] = ' ', i += 2;
    } else if (out.compare(i, 3, "R\"(") == 0) {
      out[i] = out[i + 1] = out[i + 2] = ' ', i += 3;
      while (i < n && out.compare(i, 2, ")\"") != 0) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) out[i] = out[i + 1] = ' ', i += 2;
    } else if (out[i] == '"') {
      out[i++] = ' ';
      while (i < n && out[i] != '"') {
        if (out[i] == '\\') out[i] = ' ', ++i;
        if (i < n && out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) out[i++] = ' ';
    } else if (out[i] == '\'') {
      out[i++] = ' ';
      while (i < n && out[i] != '\'') {
        if (out[i] == '\\') out[i] = ' ', ++i;
        if (i < n) out[i] = ' ';
        ++i;
      }
      if (i < n) out[i++] = ' ';
    } else {
      ++i;
    }
  }
  return out;
}

/// src/common/status.h -> LAKEKIT_COMMON_STATUS_H_
std::string ExpectedGuard(const fs::path& rel) {
  std::string guard = "LAKEKIT_";
  std::string tail = rel.generic_string();          // e.g. common/status.h
  for (char c : tail) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const fs::path& file, const fs::path& rel_to_src,
                      const std::vector<std::string>& lines) {
  const std::string expected = ExpectedGuard(rel_to_src);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("#ifndef", 0) != 0) continue;
    std::istringstream in(line);
    std::string directive, guard;
    in >> directive >> guard;
    if (guard != expected) {
      Report(file, i + 1, "guard",
             "include guard '" + guard + "' should be '" + expected + "'");
    } else if (i + 1 >= lines.size() ||
               lines[i + 1].rfind("#define " + expected, 0) != 0) {
      Report(file, i + 2, "guard",
             "expected '#define " + expected + "' right after #ifndef");
    }
    return;
  }
  Report(file, 1, "guard", "header has no include guard (#ifndef " + expected +
                               ")");
}

void CheckUsingNamespace(const fs::path& file,
                         const std::vector<std::string>& lines) {
  static const std::regex kUsingNs(R"(^\s*using\s+namespace\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], kUsingNs)) {
      Report(file, i + 1, "using-ns",
             "'using namespace' in a header leaks into every includer");
    }
  }
}

void CheckManualStatusChain(const fs::path& file, const std::string& text) {
  // `if (!s.ok()) return s;` — same identifier both times. The Result form
  // `if (!r.ok()) return r.status();` is likewise LAKEKIT_ASSIGN_OR_RETURN's
  // job. Matches across line breaks.
  static const std::regex kChain(
      R"(if\s*\(\s*!\s*(\w+)\.ok\s*\(\s*\)\s*\)\s*\{?\s*return\s+(\1|\1\.status\(\))\s*;)");
  auto begin = std::sregex_iterator(text.begin(), text.end(), kChain);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    size_t line = LineOfOffset(text, static_cast<size_t>(it->position()));
    Report(file, line, "manual-chain",
           "use LAKEKIT_RETURN_IF_ERROR / LAKEKIT_ASSIGN_OR_RETURN instead of "
           "hand-rolled '" +
               it->str() + "'");
  }
}

void CheckVoidDiscard(const fs::path& file,
                      const std::vector<std::string>& stripped_lines,
                      const std::vector<std::string>& lines) {
  // `(void)` followed by anything but a bare identifier discards a value;
  // lakekit reserves that spelling for Status/Result ignores, which must be
  // justified with a `// ignore: <why>` comment — on the same line or in the
  // comment block directly above.
  static const std::regex kBareVar(R"(\(void\)\s*[A-Za-z_][A-Za-z0-9_]*\s*;)");
  static const std::regex kComment(R"(^\s*(//|\*|/\*))");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    // Search the stripped line so comments/strings never trigger the rule.
    const std::string& line = stripped_lines[i];
    if (line.find("(void)") == std::string::npos) continue;
    std::smatch m;
    if (std::regex_search(line, m, kBareVar)) continue;  // unused-var silence
    bool justified = lines[i].find("ignore:") != std::string::npos;
    for (size_t j = i; !justified && j > 0; --j) {
      const std::string& above = lines[j - 1];
      if (!std::regex_search(above, kComment)) break;
      justified = above.find("ignore:") != std::string::npos;
    }
    if (!justified) {
      Report(file, i + 1, "void-discard",
             "discarding a value via (void) needs a '// ignore: <why>' "
             "comment on this line or the comment block above");
    }
  }
}

void LintFile(const fs::path& root, const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string stripped = StripCommentsAndStrings(text);
  const std::vector<std::string> lines = SplitLines(text);
  const std::vector<std::string> stripped_lines = SplitLines(stripped);
  const fs::path rel = fs::relative(file, root);

  const std::string ext = file.extension().string();
  if (ext == ".h") {
    // Guard naming applies to library headers under src/.
    const std::string rel_str = rel.generic_string();
    if (rel_str.rfind("src/", 0) == 0) {
      CheckHeaderGuard(rel, fs::relative(file, root / "src"), lines);
    }
    CheckUsingNamespace(rel, stripped_lines);
  }
  CheckManualStatusChain(rel, stripped);
  CheckVoidDiscard(rel, stripped_lines, lines);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: lakekit_lint <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  const std::vector<fs::path> dirs = {"src", "tests", "bench", "examples",
                                      "tools"};
  size_t files_checked = 0;
  for (const fs::path& dir : dirs) {
    if (!fs::exists(root / dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      LintFile(root, entry.path());
      ++files_checked;
    }
  }
  for (const Finding& f : g_findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
              << "\n";
  }
  std::cout << "lakekit_lint: " << files_checked << " files, "
            << g_findings.size() << " finding(s)\n";
  return g_findings.empty() ? 0 : 1;
}
